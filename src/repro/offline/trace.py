"""Device trace capture — everything attribution needs, as plain data.

A :class:`DeviceTrace` is the complete observable record of one run:
every power-channel breakpoint, the foreground timeline, the installed-
app table, and E-Android's attack-link history.  It is what a real
deployment would log to flash; the :mod:`repro.offline.analyzer` then
reconstructs any profiler's view *from the trace alone* — no live
device required.  (The reproduction-feasibility note for this paper was
"only offline analysis possible" — this module is that workflow, made
first-class.)

Traces serialise to a single JSON document, or — via
:meth:`DeviceTrace.to_bytes`/:meth:`DeviceTrace.save` — to the compact
columnar binary format from :mod:`repro.store.binfmt`; :meth:`load` and
:meth:`from_bytes` auto-detect which of the two they were given.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem
    from ..core.eandroid import EAndroid

TRACE_FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A trace document is malformed, truncated, or wrongly versioned.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites (and the historical version-check contract) keep working.
    """


@dataclass
class ChannelTrace:
    """One (owner, component) power channel's breakpoints."""

    owner: int
    component: str
    breakpoints: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class LinkRecord:
    """One attack link, as pure data."""

    kind: str
    driving_uid: int
    target: int
    begin_time: float
    end_time: Optional[float]


@dataclass
class DeviceTrace:
    """The full offline record of one simulated (or real) run."""

    captured_at: float
    channels: List[ChannelTrace] = field(default_factory=list)
    foreground: List[Tuple[float, Optional[int]]] = field(default_factory=list)
    apps: Dict[int, str] = field(default_factory=dict)  # uid -> label
    system_uids: List[int] = field(default_factory=list)
    links: List[LinkRecord] = field(default_factory=list)
    battery_capacity_j: float = 0.0

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the trace to JSON text."""
        return json.dumps(
            {
                "format_version": TRACE_FORMAT_VERSION,
                "captured_at": self.captured_at,
                "battery_capacity_j": self.battery_capacity_j,
                "apps": {str(uid): label for uid, label in self.apps.items()},
                "system_uids": self.system_uids,
                "foreground": self.foreground,
                "channels": [
                    {
                        "owner": ch.owner,
                        "component": ch.component,
                        "breakpoints": ch.breakpoints,
                    }
                    for ch in self.channels
                ],
                "links": [
                    {
                        "kind": link.kind,
                        "driving_uid": link.driving_uid,
                        "target": link.target,
                        "begin_time": link.begin_time,
                        "end_time": link.end_time,
                    }
                    for link in self.links
                ],
            },
            indent=indent,
        )

    @staticmethod
    def from_json(text: str) -> "DeviceTrace":
        """Parse a trace serialised by :meth:`to_json`.

        Malformed input — invalid JSON, a non-object document, a wrong
        format version, or missing/mistyped fields — raises
        :class:`TraceFormatError` rather than leaking the parser's raw
        ``KeyError``/``TypeError``.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"trace is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise TraceFormatError(
                f"trace document must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version!r} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        try:
            return DeviceTrace(
                captured_at=float(data["captured_at"]),
                battery_capacity_j=float(data.get("battery_capacity_j", 0.0)),
                apps={int(uid): label for uid, label in data.get("apps", {}).items()},
                system_uids=list(data.get("system_uids", [])),
                foreground=[
                    (float(t), None if uid is None else int(uid))
                    for t, uid in data.get("foreground", [])
                ],
                channels=[
                    ChannelTrace(
                        owner=int(ch["owner"]),
                        component=ch["component"],
                        breakpoints=[
                            (float(t), float(p)) for t, p in ch["breakpoints"]
                        ],
                    )
                    for ch in data.get("channels", [])
                ],
                links=[
                    LinkRecord(
                        kind=link["kind"],
                        driving_uid=int(link["driving_uid"]),
                        target=int(link["target"]),
                        begin_time=float(link["begin_time"]),
                        end_time=(
                            None
                            if link["end_time"] is None
                            else float(link["end_time"])
                        ),
                    )
                    for link in data.get("links", [])
                ],
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            if isinstance(exc, TraceFormatError):  # pragma: no cover
                raise
            raise TraceFormatError(
                f"trace document is truncated or malformed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def to_bytes(self, binary: bool = True) -> bytes:
        """Serialise to bytes: the columnar binary format, or JSON utf-8."""
        if binary:
            from ..store.binfmt import encode_trace

            return encode_trace(self)
        return self.to_json().encode("utf-8")

    @staticmethod
    def from_bytes(data: bytes) -> "DeviceTrace":
        """Parse either serialisation, auto-detected by the binary magic."""
        from ..store.binfmt import decode_trace, is_binary_trace

        if is_binary_trace(data):
            return decode_trace(data)
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"trace is neither binary (bad magic) nor valid UTF-8 JSON: {exc}"
            ) from exc
        return DeviceTrace.from_json(text)

    def save(self, path: Union[str, Path], binary: Optional[bool] = None) -> Path:
        """Write the trace to ``path``; format defaults from the suffix.

        ``.bin`` / ``.rtb`` suffixes pick the binary format, anything
        else picks JSON; pass ``binary`` explicitly to override.
        """
        path = Path(path)
        if binary is None:
            binary = path.suffix.lower() in (".bin", ".rtb")
        path.write_bytes(self.to_bytes(binary=binary))
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "DeviceTrace":
        """Read a trace file in either format (auto-detected)."""
        return DeviceTrace.from_bytes(Path(path).read_bytes())


def capture_trace(
    system: "AndroidSystem", eandroid: Optional["EAndroid"] = None
) -> DeviceTrace:
    """Snapshot a live device (and optionally its E-Android state)."""
    meter = system.hardware.meter
    trace = DeviceTrace(
        captured_at=system.now,
        battery_capacity_j=system.battery.capacity_j,
    )
    for owner, component in meter.channels():
        channel = meter.trace(owner, component)
        assert channel is not None
        trace.channels.append(
            ChannelTrace(
                owner=owner,
                component=component,
                breakpoints=channel.breakpoints(),
            )
        )
    trace.foreground = system.am.timeline.changes()
    for app in system.package_manager.installed_apps():
        if app.uid is not None:
            trace.apps[app.uid] = app.label
            if system.package_manager.is_system_uid(app.uid):
                trace.system_uids.append(app.uid)
    if eandroid is not None:
        for link in eandroid.accounting.attack_log():
            trace.links.append(
                LinkRecord(
                    kind=link.kind.value,
                    driving_uid=link.driving_uid,
                    target=link.target,
                    begin_time=link.begin_time,
                    end_time=link.end_time,
                )
            )
    return trace

"""Offline attribution: reconstruct profiler views from a trace.

Given a :class:`~repro.offline.trace.DeviceTrace` — and nothing else —
the analyzer re-derives each profiler's battery view:

* :meth:`OfflineAnalyzer.batterystats_report` — per-app direct energy,
  screen/OS as standalone rows;
* :meth:`OfflineAnalyzer.powertutor_report` — screen redistributed over
  the recorded foreground timeline;
* :meth:`OfflineAnalyzer.eandroid_report` — the baseline plus collateral
  charges integrated over the recorded attack-link windows.

The invariant (tested): for any run, the offline reports equal the
online ones to numerical precision.  That makes traces a complete,
portable record — the "offline analysis" form of the paper's system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..accounting.base import AppEnergyEntry, ProfilerReport
from ..power.meter import SCREEN_OWNER, SYSTEM_OWNER
from ..power.trace import PowerTrace
from .trace import DeviceTrace, LinkRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..reports.request import ReportRequest
    from ..reports.view import ProfilerReportView

SCREEN_TARGET = -100  # matches repro.core.links.SCREEN_TARGET


class OfflineAnalyzer:
    """Attribution over a captured trace."""

    def __init__(self, trace: DeviceTrace) -> None:
        self.trace = trace
        self._channels: Dict[Tuple[int, str], PowerTrace] = {}
        for channel in trace.channels:
            power_trace = PowerTrace()
            for t, mw in channel.breakpoints:
                power_trace.append(t, mw)
            self._channels[(channel.owner, channel.component)] = power_trace

    # ------------------------------------------------------------------
    # primitive energy queries
    # ------------------------------------------------------------------
    def energy_j(
        self,
        owner: Optional[int] = None,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> float:
        """Energy over a window, optionally for one owner."""
        window_end = self.trace.captured_at if end is None else end
        return sum(
            channel.energy_j(start, window_end)
            for (channel_owner, _), channel in self._channels.items()
            if owner is None or channel_owner == owner
        )

    def owners(self) -> Set[int]:
        """Every owner appearing in the trace."""
        return {owner for owner, _ in self._channels}

    def label_for(self, uid: int) -> str:
        """Display label for a uid from the trace's app table."""
        return self.trace.apps.get(uid, f"uid:{uid}")

    def _foreground_intervals(
        self, uid: int, start: float, end: float
    ) -> List[Tuple[float, float]]:
        changes = self.trace.foreground
        result: List[Tuple[float, float]] = []
        for index, (t, owner) in enumerate(changes):
            seg_start = max(t, start)
            seg_end = changes[index + 1][0] if index + 1 < len(changes) else end
            seg_end = min(seg_end, end)
            if owner == uid and seg_end > seg_start:
                result.append((seg_start, seg_end))
        return result

    # ------------------------------------------------------------------
    # profiler reconstructions
    # ------------------------------------------------------------------
    def batterystats_report(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> ProfilerReport:
        """The stock-Android view, from the trace alone."""
        window_end = self.trace.captured_at if end is None else end
        report = ProfilerReport(
            profiler="BatteryStats (offline)", start=start, end=window_end
        )
        for owner in self.owners():
            energy = self.energy_j(owner=owner, start=start, end=window_end)
            if energy <= 0:
                continue
            if owner == SCREEN_OWNER:
                entry = AppEnergyEntry(
                    uid=None, label="Screen", energy_j=energy, is_screen=True
                )
            elif owner == SYSTEM_OWNER:
                entry = AppEnergyEntry(
                    uid=None, label="Android OS", energy_j=energy, is_system=True
                )
            else:
                entry = AppEnergyEntry(
                    uid=owner,
                    label=self.label_for(owner),
                    energy_j=energy,
                    is_system=owner in self.trace.system_uids,
                )
            report.entries.append(entry)
        return report.finalize()

    def powertutor_report(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> ProfilerReport:
        """The PowerTutor view, from the trace alone."""
        window_end = self.trace.captured_at if end is None else end
        report = ProfilerReport(
            profiler="PowerTutor (offline)", start=start, end=window_end
        )
        energies: Dict[int, float] = {}
        system_energy = 0.0
        for owner in self.owners():
            energy = self.energy_j(owner=owner, start=start, end=window_end)
            if energy <= 0:
                continue
            if owner == SYSTEM_OWNER:
                system_energy += energy
            elif owner != SCREEN_OWNER:
                energies[owner] = energies.get(owner, 0.0) + energy
        screen_channel = self._channels.get((SCREEN_OWNER, "screen"))
        unattributed = 0.0
        if screen_channel is not None:
            total_screen = screen_channel.energy_j(start, window_end)
            attributed = 0.0
            for uid in {u for _, u in self.trace.foreground if u is not None}:
                share = sum(
                    screen_channel.energy_j(s, e)
                    for s, e in self._foreground_intervals(uid, start, window_end)
                )
                if share > 0:
                    energies[uid] = energies.get(uid, 0.0) + share
                    attributed += share
            unattributed = max(0.0, total_screen - attributed)
        for uid, energy in energies.items():
            report.entries.append(
                AppEnergyEntry(
                    uid=uid,
                    label=self.label_for(uid),
                    energy_j=energy,
                    is_system=uid in self.trace.system_uids,
                )
            )
        if system_energy > 0:
            report.entries.append(
                AppEnergyEntry(
                    uid=None, label="System", energy_j=system_energy, is_system=True
                )
            )
        if unattributed > 0:
            report.entries.append(
                AppEnergyEntry(
                    uid=None,
                    label="Screen (no foreground)",
                    energy_j=unattributed,
                    is_screen=True,
                )
            )
        return report.finalize()

    # ------------------------------------------------------------------
    # E-Android offline
    # ------------------------------------------------------------------
    def _link_windows(
        self, start: float, end: float
    ) -> Dict[int, Dict[int, List[Tuple[float, float]]]]:
        """host -> target -> merged charge windows, from the link log.

        Reconstructs per-(host, target) windows by reachability over the
        link set sampled at every link boundary — the offline equivalent
        of the live map-set sync.
        """
        boundaries = sorted(
            {start, end}
            | {l.begin_time for l in self.trace.links}
            | {l.end_time for l in self.trace.links if l.end_time is not None}
        )
        boundaries = [b for b in boundaries if start <= b <= end]
        if not boundaries or boundaries[0] > start:
            boundaries.insert(0, start)
        if boundaries[-1] < end:
            boundaries.append(end)
        windows: Dict[int, Dict[int, List[Tuple[float, float]]]] = {}
        hosts = {l.driving_uid for l in self.trace.links}
        for seg_start, seg_end in zip(boundaries, boundaries[1:]):
            if seg_end <= seg_start:
                continue
            midpoint = (seg_start + seg_end) / 2.0
            live = [
                l
                for l in self.trace.links
                if l.begin_time <= midpoint
                and (l.end_time is None or l.end_time > midpoint)
            ]
            for host in hosts:
                for target in self._reachable(host, live):
                    target_windows = windows.setdefault(host, {}).setdefault(
                        target, []
                    )
                    if target_windows and target_windows[-1][1] == seg_start:
                        target_windows[-1] = (target_windows[-1][0], seg_end)
                    else:
                        target_windows.append((seg_start, seg_end))
        return windows

    @staticmethod
    def _reachable(host: int, live: List[LinkRecord]) -> Set[int]:
        reached: Set[int] = set()
        frontier = [host]
        seen = {host}
        while frontier:
            node = frontier.pop()
            for link in live:
                if link.driving_uid != node:
                    continue
                target = link.target
                if target == host or target in reached:
                    continue
                reached.add(target)
                if target not in seen and target != SCREEN_TARGET:
                    seen.add(target)
                    frontier.append(target)
        return reached

    def collateral_breakdown(
        self, host: int, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[int, float]:
        """target -> joules charged to ``host``, from the trace alone."""
        window_end = self.trace.captured_at if end is None else end
        windows = self._link_windows(start, window_end).get(host, {})
        breakdown: Dict[int, float] = {}
        for target, intervals in windows.items():
            if target == SCREEN_TARGET:
                total = sum(
                    self.energy_j(owner=SCREEN_OWNER, start=s, end=e)
                    for s, e in intervals
                )
            else:
                total = sum(
                    self.energy_j(owner=target, start=s, end=e)
                    for s, e in intervals
                )
            if total > 0:
                breakdown[target] = total
        return breakdown

    def eandroid_report(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> ProfilerReport:
        """The revised (BatteryStats-based) E-Android view, offline."""
        window_end = self.trace.captured_at if end is None else end
        report = self.batterystats_report(start, window_end)
        report.profiler = "E-Android (offline)"
        for host in sorted({l.driving_uid for l in self.trace.links}):
            breakdown = self.collateral_breakdown(host, start, window_end)
            if not breakdown:
                continue
            entry = report.entry_for_uid(host)
            if entry is None:
                entry = AppEnergyEntry(
                    uid=host, label=self.label_for(host), energy_j=0.0
                )
                report.entries.append(entry)
            for target, joules in breakdown.items():
                label = (
                    "Screen" if target == SCREEN_TARGET else self.label_for(target)
                )
                entry.collateral_j[label] = (
                    entry.collateral_j.get(label, 0.0) + joules
                )
                entry.energy_j += joules
        report.entries.sort(key=lambda e: e.energy_j, reverse=True)
        ground_truth = self.energy_j(start=start, end=window_end)
        for entry in report.entries:
            entry.percent = (
                100.0 * entry.energy_j / ground_truth if ground_truth > 0 else 0.0
            )
        return report

    # ------------------------------------------------------------------
    # raw-energy / collateral report forms (for the unified API)
    # ------------------------------------------------------------------
    def energy_report(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> ProfilerReport:
        """Ground-truth per-owner energy, as report rows (no policy).

        One row per owner in the trace — Screen and Android OS keep
        their aggregate labels, every app keeps its uid — with no
        redistribution or collateral superimposition at all.
        """
        window_end = self.trace.captured_at if end is None else end
        report = ProfilerReport(
            profiler="Energy (ground truth)", start=start, end=window_end
        )
        for owner in self.owners():
            energy = self.energy_j(owner=owner, start=start, end=window_end)
            if energy <= 0:
                continue
            if owner == SCREEN_OWNER:
                entry = AppEnergyEntry(
                    uid=None, label="Screen", energy_j=energy, is_screen=True
                )
            elif owner == SYSTEM_OWNER:
                entry = AppEnergyEntry(
                    uid=None, label="Android OS", energy_j=energy, is_system=True
                )
            else:
                entry = AppEnergyEntry(
                    uid=owner,
                    label=self.label_for(owner),
                    energy_j=energy,
                    is_system=owner in self.trace.system_uids,
                )
            report.entries.append(entry)
        return report.finalize()

    def collateral_report(
        self,
        start: float = 0.0,
        end: Optional[float] = None,
        hosts: Optional[Tuple[int, ...]] = None,
    ) -> ProfilerReport:
        """Per-host collateral inventories as report rows.

        One row per driving host carrying attack links in the window;
        the row's energy is the collateral total and its
        ``collateral_j`` map is the per-target breakdown.  ``hosts``
        restricts which driving uids are rendered.
        """
        window_end = self.trace.captured_at if end is None else end
        report = ProfilerReport(
            profiler="Collateral (offline)", start=start, end=window_end
        )
        all_hosts = sorted({l.driving_uid for l in self.trace.links})
        if hosts is not None:
            wanted = set(hosts)
            all_hosts = [h for h in all_hosts if h in wanted]
        for host in all_hosts:
            breakdown = self.collateral_breakdown(host, start, window_end)
            if not breakdown:
                continue
            entry = AppEnergyEntry(
                uid=host, label=self.label_for(host), energy_j=0.0
            )
            for target, joules in breakdown.items():
                label = (
                    "Screen" if target == SCREEN_TARGET else self.label_for(target)
                )
                entry.collateral_j[label] = (
                    entry.collateral_j.get(label, 0.0) + joules
                )
                entry.energy_j += joules
            report.entries.append(entry)
        return report.finalize()

    def describe(self, request: "ReportRequest") -> "ProfilerReportView":
        """Answer a typed request — any of the five backends, offline.

        This is the dispatch the serving layer relies on: one analyzer
        (one ingested trace) renders every report surface through the
        unified :class:`~repro.reports.ReportView` protocol.
        """
        from ..reports.request import UnknownBackendError
        from ..reports.view import ProfilerReportView, view_from_report

        start, end = request.start, request.end
        if request.backend == "energy":
            report = self.energy_report(start, end)
        elif request.backend == "batterystats":
            report = self.batterystats_report(start, end)
        elif request.backend == "powertutor":
            report = self.powertutor_report(start, end)
        elif request.backend == "eandroid":
            report = self.eandroid_report(start, end)
        elif request.backend == "collateral":
            report = self.collateral_report(start, end, hosts=request.owners)
            return ProfilerReportView(backend="collateral", report=report)
        else:  # pragma: no cover - ReportRequest already validates
            raise UnknownBackendError(request.backend)
        return view_from_report(report, request.backend, request)

"""Test kit: minimal instrumented apps for writing scenarios and tests.

Downstream users exploring their own attack or accounting ideas need
lightweight apps whose lifecycle transitions are observable; these
builders provide exactly that — a generic app with a launchable
activity, a transparent cover, an exported service, and a non-exported
activity, every component recording its lifecycle events.  The repo's
own test suite is built on this kit (``tests/helpers.py`` re-exports it).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.android import (
    Activity,
    AndroidManifest,
    App,
    AndroidSystem,
    ComponentDecl,
    ComponentKind,
    REORDER_TASKS,
    Service,
    WAKE_LOCK,
    WRITE_SETTINGS,
    launcher_filter,
)


class PlainActivity(Activity):
    """Records its lifecycle transitions for assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[str] = []

    def on_create(self) -> None:
        self.events.append("create")

    def on_start(self) -> None:
        self.events.append("start")

    def on_resume(self) -> None:
        self.events.append("resume")

    def on_pause(self) -> None:
        self.events.append("pause")

    def on_stop(self) -> None:
        self.events.append("stop")

    def on_restart(self) -> None:
        self.events.append("restart")

    def on_destroy(self) -> None:
        self.events.append("destroy")


class TransparentActivity(PlainActivity):
    """A Theme.Translucent activity (covers pause, not stop)."""

    transparent = True


class PlainService(Service):
    """Records its lifecycle transitions for assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[str] = []

    def on_create(self) -> None:
        self.events.append("create")

    def on_start_command(self, intent) -> None:
        self.events.append("start_command")

    def on_bind(self, intent) -> None:
        self.events.append("bind")

    def on_unbind(self) -> None:
        self.events.append("unbind")

    def on_destroy(self) -> None:
        self.events.append("destroy")


def make_app(
    package: str,
    permissions: Tuple[str, ...] = (WAKE_LOCK, WRITE_SETTINGS, REORDER_TASKS),
    exported: bool = True,
) -> App:
    """A generic app with one launchable activity, a cover, and a service."""
    manifest = AndroidManifest(
        package=package,
        uses_permissions=frozenset(permissions),
        components=(
            ComponentDecl(
                name="PlainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=exported,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="TransparentActivity",
                kind=ComponentKind.ACTIVITY,
                exported=exported,
                transparent=True,
            ),
            ComponentDecl(
                name="PlainService",
                kind=ComponentKind.SERVICE,
                exported=exported,
            ),
            ComponentDecl(
                name="PrivateActivity",
                kind=ComponentKind.ACTIVITY,
                exported=False,
            ),
        ),
    )
    return App(
        manifest,
        {
            "PlainActivity": PlainActivity,
            "TransparentActivity": TransparentActivity,
            "PlainService": PlainService,
            "PrivateActivity": PlainActivity,
        },
    )


def booted_system(*apps: App) -> AndroidSystem:
    """A booted device with the given apps installed."""
    system = AndroidSystem()
    for app in apps:
        system.install(app)
    system.boot()
    return system

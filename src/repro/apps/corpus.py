"""Synthetic Google-Play corpus for the Fig. 2 census.

The paper collected 1,124 popular apps across 28 categories and found
72% with exported components, 81% requesting WAKE_LOCK, and 21%
requesting WRITE_SETTINGS.  With no Play Store offline, we generate a
seeded synthetic corpus: each category has a feature-probability profile
(games lean on wakelocks, tools on WRITE_SETTINGS, ...), calibrated so
the aggregate rates land on the paper's numbers.  Each app materialises
as a real serialized AndroidManifest.xml inside a :class:`SyntheticApk`,
which :mod:`repro.apps.apktool` then reverse-engineers — the census runs
on parsed XML, exercising the same pipeline as the paper's APKTool study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..android.intent import ACTION_SEND, ACTION_VIEW, CATEGORY_DEFAULT
from ..android.manifest import (
    ACCESS_FINE_LOCATION,
    CAMERA,
    INTERNET,
    RECORD_AUDIO,
    WAKE_LOCK,
    WRITE_SETTINGS,
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
    launcher_filter,
)
from ..sim.rng import SeededRng

PAPER_CORPUS_SIZE = 1124
PAPER_CATEGORY_COUNT = 28

# (category, share-weight, P(exported), P(WAKE_LOCK), P(WRITE_SETTINGS))
# Calibrated so the weighted aggregates sit at ~72% / ~81% / ~21%.
CATEGORY_PROFILES: List[Tuple[str, float, float, float, float]] = [
    ("game_action", 2.0, 0.62, 0.94, 0.16),
    ("game_casual", 2.0, 0.60, 0.93, 0.14),
    ("game_puzzle", 1.5, 0.58, 0.92, 0.12),
    ("business", 1.2, 0.80, 0.78, 0.18),
    ("finance", 1.2, 0.78, 0.72, 0.10),
    ("communication", 1.4, 0.90, 0.95, 0.30),
    ("social", 1.4, 0.88, 0.92, 0.22),
    ("productivity", 1.2, 0.82, 0.83, 0.33),
    ("tools", 1.6, 0.76, 0.85, 0.48),
    ("personalization", 1.0, 0.70, 0.70, 0.52),
    ("photography", 1.0, 0.74, 0.82, 0.20),
    ("music_audio", 1.2, 0.78, 0.95, 0.24),
    ("video_players", 1.0, 0.76, 0.94, 0.28),
    ("entertainment", 1.4, 0.72, 0.84, 0.16),
    ("shopping", 1.0, 0.80, 0.74, 0.08),
    ("travel_local", 1.0, 0.78, 0.76, 0.10),
    ("maps_navigation", 0.8, 0.76, 0.88, 0.18),
    ("news_magazines", 1.0, 0.74, 0.72, 0.08),
    ("books_reference", 1.0, 0.66, 0.74, 0.26),
    ("education", 1.0, 0.64, 0.70, 0.10),
    ("health_fitness", 1.0, 0.72, 0.86, 0.16),
    ("medical", 0.6, 0.62, 0.64, 0.08),
    ("lifestyle", 1.0, 0.70, 0.72, 0.12),
    ("sports", 0.8, 0.72, 0.78, 0.10),
    ("weather", 0.6, 0.68, 0.80, 0.22),
    ("food_drink", 0.6, 0.70, 0.66, 0.06),
    ("house_home", 0.5, 0.64, 0.62, 0.08),
    ("libraries_demo", 0.5, 0.52, 0.54, 0.14),
]

assert len(CATEGORY_PROFILES) == PAPER_CATEGORY_COUNT


@dataclass(frozen=True)
class SyntheticApk:
    """One 'downloaded' app: package id plus its packed manifest XML."""

    package: str
    category: str
    manifest_xml: str


def _category_sizes(rng: SeededRng, total: int) -> Dict[str, int]:
    """Split ``total`` apps across categories by weight (exact sum)."""
    weights = [w for _, w, _, _, _ in CATEGORY_PROFILES]
    weight_sum = sum(weights)
    sizes: Dict[str, int] = {}
    allocated = 0
    for name, weight, _, _, _ in CATEGORY_PROFILES[:-1]:
        count = int(round(total * weight / weight_sum))
        sizes[name] = count
        allocated += count
    sizes[CATEGORY_PROFILES[-1][0]] = total - allocated
    return sizes


def _build_components(
    rng: SeededRng, exported: bool, index: int
) -> Tuple[ComponentDecl, ...]:
    """Component set for one app: a launcher activity plus extras."""
    components = [
        ComponentDecl(
            name="MainActivity",
            kind=ComponentKind.ACTIVITY,
            exported=True,  # launcher activities are exported by filter
            intent_filters=(launcher_filter(),),
        )
    ]
    if exported:
        # An additional deliberately exported component — the attack
        # surface Fig. 2 counts.
        kind = rng.weighted_choice(
            [ComponentKind.ACTIVITY, ComponentKind.SERVICE, ComponentKind.RECEIVER],
            [0.45, 0.35, 0.20],
        )
        action = rng.choice([ACTION_VIEW, ACTION_SEND])
        components.append(
            ComponentDecl(
                name=f"Exported{kind.value.capitalize()}{index}",
                kind=kind,
                exported=True,
                intent_filters=(
                    IntentFilterDecl(
                        actions=frozenset({action}),
                        categories=frozenset({CATEGORY_DEFAULT}),
                    ),
                ),
            )
        )
    if rng.bernoulli(0.6):
        components.append(
            ComponentDecl(
                name="SyncService", kind=ComponentKind.SERVICE, exported=False
            )
        )
    return tuple(components)


def generate_corpus(
    seed: int = 7, size: int = PAPER_CORPUS_SIZE
) -> List[SyntheticApk]:
    """Generate the synthetic Play corpus as packed APK manifests.

    Note: Fig. 2 counts apps that "contain an exported component" beyond
    the implicit launcher entry point, so the census flag is driven by
    the extra exported components, not MainActivity.
    """
    rng = SeededRng(seed)
    apks: List[SyntheticApk] = []
    sizes = _category_sizes(rng, size)
    app_index = 0
    for name, _, p_exported, p_wakelock, p_settings in CATEGORY_PROFILES:
        for _ in range(sizes[name]):
            app_index += 1
            exported = rng.bernoulli(p_exported)
            permissions = {INTERNET}
            if rng.bernoulli(p_wakelock):
                permissions.add(WAKE_LOCK)
            if rng.bernoulli(p_settings):
                permissions.add(WRITE_SETTINGS)
            if rng.bernoulli(0.35):
                permissions.add(ACCESS_FINE_LOCATION)
            if rng.bernoulli(0.30):
                permissions.add(CAMERA)
            if rng.bernoulli(0.20):
                permissions.add(RECORD_AUDIO)
            package = f"com.play.{name}.app{app_index:04d}"
            manifest = AndroidManifest(
                package=package,
                category=name,
                uses_permissions=frozenset(permissions),
                components=_build_components(rng, exported, app_index),
            )
            apks.append(
                SyntheticApk(
                    package=package,
                    category=name,
                    manifest_xml=manifest.to_xml(),
                )
            )
    return apks

"""Additional realistic demo apps: Maps (GPS) and Browser (radio).

These widen the hardware coverage of the attack scenarios beyond
CPU/camera/screen: a navigation session holds the GPS receiver on (a
classic tail-energy hog), and the browser drives the radio between
high-traffic bursts and tail states — the component set the energy-
modeling literature the paper builds on (PowerTutor, AppScope) centres
on.
"""

from __future__ import annotations

from ..android.activity import Activity
from ..android.app import App
from ..android.intent import ACTION_VIEW, CATEGORY_DEFAULT
from ..android.manifest import (
    ACCESS_FINE_LOCATION,
    INTERNET,
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
    launcher_filter,
)
from ..android.service import Service

MAPS_PACKAGE = "com.app.maps"
BROWSER_PACKAGE = "com.app.browser"

MAPS_FG_CPU = 0.20
BROWSER_FG_CPU = 0.12
NAVIGATION_CPU = 0.15


class MapsMainActivity(Activity):
    """Map view: GPS on while visible, exported navigation entry point."""

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(MAPS_FG_CPU)
        self.context.start_gps()

    def on_pause(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.0)
        self.context.stop_gps()


class NavigationService(Service):
    """Turn-by-turn navigation: GPS + CPU even in the background.

    Exported — which makes it a textbook energy-hog component for the
    paper's attack #1/#3 patterns (start or bind it from another app and
    the GPS burns on the Maps app's ledger).
    """

    def on_create(self) -> None:
        assert self.context is not None
        self.context.start_gps()
        self.context.set_cpu_load(NAVIGATION_CPU)

    def on_destroy(self) -> None:
        assert self.context is not None
        self.context.stop_gps()
        self.context.set_cpu_load(0.0)


def build_maps_app() -> App:
    """The Maps app."""
    manifest = AndroidManifest(
        package=MAPS_PACKAGE,
        category="maps_navigation",
        uses_permissions=frozenset({ACCESS_FINE_LOCATION, INTERNET}),
        components=(
            ComponentDecl(
                name="MapsMainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="NavigationService",
                kind=ComponentKind.SERVICE,
                exported=True,
            ),
        ),
    )
    return App(
        manifest,
        {
            "MapsMainActivity": MapsMainActivity,
            "NavigationService": NavigationService,
        },
    )


class BrowserActivity(Activity):
    """Web browsing: radio bursts while loading, tail after.

    Exported with a VIEW filter, so any app can hand it a URL — another
    legitimate IPC pattern an energy attacker can lean on.
    """

    page_load_seconds: float = 3.0

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(BROWSER_FG_CPU)
        self.load_page()

    def load_page(self) -> None:
        """Fetch a page: radio HIGH for the load, then back to idle
        (the radio model adds the post-burst tail draw itself)."""
        context = self.context
        assert context is not None
        radio = context.system.hardware.radio
        context.set_network_activity(radio.HIGH)
        context.schedule(
            self.page_load_seconds, self._load_finished, name="page-load"
        )

    def _load_finished(self) -> None:
        context = self.context
        assert context is not None
        radio = context.system.hardware.radio
        context.set_network_activity(radio.IDLE)

    def on_pause(self) -> None:
        context = self.context
        assert context is not None
        context.set_cpu_load(0.0)
        context.set_network_activity(context.system.hardware.radio.IDLE)


def build_browser_app() -> App:
    """The Browser app."""
    manifest = AndroidManifest(
        package=BROWSER_PACKAGE,
        category="communication",
        uses_permissions=frozenset({INTERNET}),
        components=(
            ComponentDecl(
                name="BrowserActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(
                    launcher_filter(),
                    IntentFilterDecl(
                        actions=frozenset({ACTION_VIEW}),
                        categories=frozenset({CATEGORY_DEFAULT}),
                    ),
                ),
            ),
        ),
    )
    return App(manifest, {"BrowserActivity": BrowserActivity})

"""Demo applications, the synthetic Play corpus, and the APKTool census."""

from .apktool import ApkTool, CensusResult, CensusRow, has_attackable_export, run_census
from .corpus import (
    CATEGORY_PROFILES,
    PAPER_CATEGORY_COUNT,
    PAPER_CORPUS_SIZE,
    SyntheticApk,
    generate_corpus,
)
from .testkit import (
    PlainActivity,
    PlainService,
    TransparentActivity,
    booted_system,
    make_app,
)
from .extras import (
    BROWSER_PACKAGE,
    MAPS_PACKAGE,
    build_browser_app,
    build_maps_app,
)
from .demo import (
    CAMERA_PACKAGE,
    CONTACTS_PACKAGE,
    MESSAGE_PACKAGE,
    MUSIC_PACKAGE,
    VICTIM_PACKAGE,
    build_camera_app,
    build_contacts_app,
    build_message_app,
    build_music_app,
    build_victim_app,
)

__all__ = [
    "build_camera_app",
    "build_message_app",
    "build_contacts_app",
    "build_victim_app",
    "build_music_app",
    "build_maps_app",
    "build_browser_app",
    "MAPS_PACKAGE",
    "BROWSER_PACKAGE",
    "CAMERA_PACKAGE",
    "MESSAGE_PACKAGE",
    "CONTACTS_PACKAGE",
    "VICTIM_PACKAGE",
    "MUSIC_PACKAGE",
    "generate_corpus",
    "SyntheticApk",
    "PAPER_CORPUS_SIZE",
    "PAPER_CATEGORY_COUNT",
    "CATEGORY_PROFILES",
    "ApkTool",
    "run_census",
    "CensusResult",
    "CensusRow",
    "has_attackable_export",
    "make_app",
    "booted_system",
    "PlainActivity",
    "TransparentActivity",
    "PlainService",
]

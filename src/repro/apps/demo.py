"""Demo applications used throughout the paper's scenarios.

These are the cast of §III and §VI:

* **Camera** — the energy hog; its exported video-capture activity draws
  camera + CPU power while recording (Fig. 1's villain-by-appearance).
* **Message** — opens the Camera through an implicit VIDEO_CAPTURE
  intent to film a clip inside the messaging UI (scene #1).
* **Contacts** — opens Message, which opens Camera (scene #2, the
  legitimate hybrid chain of Fig. 7).
* **Victim** — a no-sleep-bug app for attacks #3/#4: its root activity
  acquires a screen wakelock that is only released in ``onDestroy`` (the
  §III-A misuse), shows an exit-confirmation dialog on back, runs an
  exported service with real CPU load, and keeps a small background load
  while stopped-but-alive.
* **Music** — audio playback with an exported playback service.

Power numbers are expressed as CPU-fractions/hardware sessions on the
simulated platform; see :mod:`repro.power.profiles` for the wattage.
"""

from __future__ import annotations

from ..android.activity import Activity
from ..android.app import App
from ..android.intent import (
    ACTION_VIDEO_CAPTURE,
    CATEGORY_DEFAULT,
    ComponentName,
    Intent,
    implicit,
)
from ..android.manifest import (
    CAMERA,
    INTERNET,
    RECORD_AUDIO,
    WAKE_LOCK,
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
    launcher_filter,
)
from ..android.power_manager import SCREEN_BRIGHT_WAKE_LOCK
from ..android.service import Service

CAMERA_PACKAGE = "com.app.camera"
MESSAGE_PACKAGE = "com.app.message"
CONTACTS_PACKAGE = "com.app.contacts"
VICTIM_PACKAGE = "com.app.victim"
MUSIC_PACKAGE = "com.app.music"

# CPU demand while each app's UI is active (fraction of one core).
MESSAGE_FG_CPU = 0.06
CONTACTS_FG_CPU = 0.04
CAMERA_RECORD_CPU = 0.45
VICTIM_FG_CPU = 0.25
VICTIM_BG_CPU = 0.08
VICTIM_SERVICE_CPU = 0.30
MUSIC_SERVICE_CPU = 0.05


# ----------------------------------------------------------------------
# Camera
# ----------------------------------------------------------------------
class RecordVideoActivity(Activity):
    """Exported VIDEO_CAPTURE handler: preview on resume, record for the
    intent-requested duration, then finish and 'return' the clip."""

    def on_resume(self) -> None:
        context = self.context
        assert context is not None and self.intent is not None
        context.open_camera()
        context.start_recording()
        context.set_cpu_load(CAMERA_RECORD_CPU)
        duration = float(self.intent.extras.get("duration_s", 30.0))
        context.schedule(duration, self._finish_recording, name="camera-finish")

    def _finish_recording(self) -> None:
        if self.record is not None and self.record.is_foreground:
            self.finish()

    def on_pause(self) -> None:
        context = self.context
        assert context is not None
        context.stop_recording()
        context.close_camera()
        context.set_cpu_load(0.0)


def build_camera_app() -> App:
    """The Camera app."""
    manifest = AndroidManifest(
        package=CAMERA_PACKAGE,
        category="photography",
        uses_permissions=frozenset({CAMERA, WAKE_LOCK}),
        components=(
            ComponentDecl(
                name="RecordVideoActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(
                    IntentFilterDecl(
                        actions=frozenset({ACTION_VIDEO_CAPTURE}),
                        categories=frozenset({CATEGORY_DEFAULT}),
                    ),
                    launcher_filter(),
                ),
            ),
        ),
    )
    return App(manifest, {"RecordVideoActivity": RecordVideoActivity})


# ----------------------------------------------------------------------
# Message
# ----------------------------------------------------------------------
class MessageMainActivity(Activity):
    """The messaging UI; ``record_video`` embeds a camera capture."""

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(MESSAGE_FG_CPU)

    def on_pause(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.0)

    def record_video(self, duration_s: float = 30.0) -> None:
        """User taps 'Record Video' — fires the implicit capture intent."""
        assert self.context is not None
        intent = implicit(ACTION_VIDEO_CAPTURE, CATEGORY_DEFAULT)
        intent.extras["duration_s"] = duration_s
        self.context.start_activity(intent)


def build_message_app() -> App:
    """The Message app."""
    manifest = AndroidManifest(
        package=MESSAGE_PACKAGE,
        category="communication",
        uses_permissions=frozenset({INTERNET}),
        components=(
            ComponentDecl(
                name="MessageMainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
        ),
    )
    return App(manifest, {"MessageMainActivity": MessageMainActivity})


# ----------------------------------------------------------------------
# Contacts
# ----------------------------------------------------------------------
class ContactsMainActivity(Activity):
    """Contact list; can hand off to Message for a conversation."""

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(CONTACTS_FG_CPU)

    def on_pause(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.0)

    def open_message(self) -> None:
        """User taps a contact's message button."""
        assert self.context is not None
        self.context.start_activity(
            Intent(component=ComponentName(MESSAGE_PACKAGE, "MessageMainActivity"))
        )


def build_contacts_app() -> App:
    """The Contacts app."""
    manifest = AndroidManifest(
        package=CONTACTS_PACKAGE,
        category="communication",
        components=(
            ComponentDecl(
                name="ContactsMainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
        ),
    )
    return App(manifest, {"ContactsMainActivity": ContactsMainActivity})


# ----------------------------------------------------------------------
# Victim
# ----------------------------------------------------------------------
class VictimMainActivity(Activity):
    """Root activity with the paper's wakelock misuse.

    Acquires a SCREEN_BRIGHT wakelock on resume and releases it only in
    ``on_destroy`` — never in ``on_pause``/``on_stop`` — exactly the
    developer error of Pathak et al. the paper builds attack #4 on.
    On back-press it shows an exit-confirmation dialog; tapping OK
    destroys the app.
    """

    def __init__(self) -> None:
        super().__init__()
        self._wakelock = None

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(VICTIM_FG_CPU)
        if self._wakelock is None or not self._wakelock.held:
            self._wakelock = self.context.acquire_wakelock(
                SCREEN_BRIGHT_WAKE_LOCK, "victim-ui"
            )

    def on_pause(self) -> None:
        pass  # BUG (intentional): wakelock not released here

    def on_stop(self) -> None:
        # BUG (intentional): wakelock not released here either; keep a
        # small background load while the process lives.
        assert self.context is not None
        self.context.set_cpu_load(VICTIM_BG_CPU)

    def on_restart(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(VICTIM_FG_CPU)

    def on_destroy(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.0)
        if self._wakelock is not None and self._wakelock.held:
            self._wakelock.release()
            self._wakelock = None

    def on_back_pressed(self) -> bool:
        """Most apps confirm before exiting (§V)."""
        self.show_dialog("exit")
        return True

    def on_dialog_ok(self) -> None:
        """User confirmed the exit dialog: destroy the app."""
        self.dismiss_dialog()
        self.finish()


class VictimWorkService(Service):
    """Exported service with a heavy computational workload."""

    def on_create(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(VICTIM_SERVICE_CPU)

    def on_destroy(self) -> None:
        assert self.context is not None
        # Restore the activity's load if the UI is still alive.
        uid = self.context.uid
        records = self.context.system.am.supervisor.records_of_uid(uid)
        resumed = any(r.is_foreground for r in records)
        if resumed:
            self.context.set_cpu_load(VICTIM_FG_CPU)
        elif records:
            self.context.set_cpu_load(VICTIM_BG_CPU)
        else:
            self.context.set_cpu_load(0.0)


def build_victim_app(package: str = VICTIM_PACKAGE) -> App:
    """A victim app instance (package name overridable to install many)."""
    manifest = AndroidManifest(
        package=package,
        category="productivity",
        uses_permissions=frozenset({WAKE_LOCK, INTERNET}),
        components=(
            ComponentDecl(
                name="VictimMainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="VictimWorkService",
                kind=ComponentKind.SERVICE,
                exported=True,
            ),
        ),
    )
    return App(
        manifest,
        {
            "VictimMainActivity": VictimMainActivity,
            "VictimWorkService": VictimWorkService,
        },
    )


# ----------------------------------------------------------------------
# Music
# ----------------------------------------------------------------------
class MusicMainActivity(Activity):
    """Playback UI; starts the playback service."""

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.start_service(
            Intent(component=ComponentName(MUSIC_PACKAGE, "PlaybackService"))
        )


class PlaybackService(Service):
    """Foreground-style audio playback service."""

    def on_create(self) -> None:
        assert self.context is not None
        self.context.start_audio()
        self.context.set_cpu_load(MUSIC_SERVICE_CPU)

    def on_destroy(self) -> None:
        assert self.context is not None
        self.context.stop_audio()
        self.context.set_cpu_load(0.0)


def build_music_app() -> App:
    """The Music app."""
    manifest = AndroidManifest(
        package=MUSIC_PACKAGE,
        category="music_audio",
        uses_permissions=frozenset({WAKE_LOCK, RECORD_AUDIO}),
        components=(
            ComponentDecl(
                name="MusicMainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="PlaybackService",
                kind=ComponentKind.SERVICE,
                exported=True,
            ),
        ),
    )
    return App(
        manifest,
        {
            "MusicMainActivity": MusicMainActivity,
            "PlaybackService": PlaybackService,
        },
    )

"""APKTool-style manifest extraction and the Fig. 2 census.

"We use APKTool to extract the AndroidManifest.xml file of each app by
reverse-engineering the app.  We inspect those apps from three aspects:
(1) does the app contain an exported component? (2) does the app require
the WAKE_LOCK permission? and (3) does the app require WRITE_SETTINGS
permission?" (§III-B)

The extractor parses the packed XML back into a manifest object; the
census runs the three questions over a corpus.  An app "contains an
exported component" when it exports anything beyond its MAIN/LAUNCHER
entry activity (every launchable app trivially exports that one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..android.intent import ACTION_MAIN, CATEGORY_LAUNCHER
from ..android.manifest import WAKE_LOCK, WRITE_SETTINGS, AndroidManifest, ComponentDecl
from .corpus import SyntheticApk


class ApkTool:
    """Minimal APKTool: unpack an APK's manifest."""

    @staticmethod
    def extract_manifest(apk: SyntheticApk) -> AndroidManifest:
        """Reverse-engineer the manifest out of the packed APK."""
        manifest = AndroidManifest.from_xml(apk.manifest_xml)
        if manifest.package != apk.package:
            raise ValueError(
                f"manifest package {manifest.package!r} does not match "
                f"APK identity {apk.package!r}"
            )
        return manifest


def _is_launcher_entry(decl: ComponentDecl) -> bool:
    return any(
        ACTION_MAIN in filt.actions and CATEGORY_LAUNCHER in filt.categories
        for filt in decl.intent_filters
    )


def has_attackable_export(manifest: AndroidManifest) -> bool:
    """Whether the app exports anything beyond its launcher entry."""
    return any(
        decl.exported and not _is_launcher_entry(decl)
        for decl in manifest.components
    )


@dataclass
class CensusRow:
    """Aggregated census numbers for one category (or the total)."""

    category: str
    total: int = 0
    exported: int = 0
    wake_lock: int = 0
    write_settings: int = 0

    def pct(self, count: int) -> float:
        """Percentage helper."""
        return 100.0 * count / self.total if self.total else 0.0

    @property
    def exported_pct(self) -> float:
        """Share with exported components."""
        return self.pct(self.exported)

    @property
    def wake_lock_pct(self) -> float:
        """Share requesting WAKE_LOCK."""
        return self.pct(self.wake_lock)

    @property
    def write_settings_pct(self) -> float:
        """Share requesting WRITE_SETTINGS."""
        return self.pct(self.write_settings)


@dataclass
class CensusResult:
    """The full Fig. 2 census output."""

    overall: CensusRow
    by_category: Dict[str, CensusRow]

    def render_text(self) -> str:
        """ASCII rendering of Fig. 2."""
        lines = [
            "=== Fig. 2 — collected apps census ===",
            f"apps inspected: {self.overall.total} "
            f"in {len(self.by_category)} categories",
            f"  exported component : {self.overall.exported_pct:5.1f}%  (paper: 72%)",
            f"  WAKE_LOCK          : {self.overall.wake_lock_pct:5.1f}%  (paper: 81%)",
            f"  WRITE_SETTINGS     : {self.overall.write_settings_pct:5.1f}%  (paper: 21%)",
        ]
        return "\n".join(lines)


def run_census(apks: Iterable[SyntheticApk]) -> CensusResult:
    """Reverse-engineer every APK and answer the paper's three questions."""
    overall = CensusRow(category="ALL")
    by_category: Dict[str, CensusRow] = {}
    for apk in apks:
        manifest = ApkTool.extract_manifest(apk)
        rows = [overall, by_category.setdefault(apk.category, CensusRow(apk.category))]
        exported = has_attackable_export(manifest)
        wake = manifest.requests_permission(WAKE_LOCK)
        settings = manifest.requests_permission(WRITE_SETTINGS)
        for row in rows:
            row.total += 1
            row.exported += int(exported)
            row.wake_lock += int(wake)
            row.write_settings += int(settings)
    return CensusResult(overall=overall, by_category=by_category)

"""Store administration: the logic behind ``python -m repro store``.

Pure functions over an :class:`~repro.store.ArtifactStore` returning
JSON-ready dicts, so the CLI stays a thin argument-parsing shell and
tests can drive maintenance directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .artifact import ArtifactStore, GcReport
from .codecs import CODECS, get_codec, migration_path

PathLike = Union[str, Path]


def inspect_store(store: ArtifactStore) -> Dict[str, Any]:
    """A full, JSON-ready description of the store's contents."""
    artifacts: List[Dict[str, Any]] = []
    for info in store.artifacts():
        record = info.to_dict()
        record.pop("schema", None)
        codec = CODECS.get(info.codec)
        if codec is not None and info.version < codec.version:
            record["migration"] = {
                "current": codec.version,
                "path": migration_path(info.codec, info.version),
            }
        artifacts.append(record)
    refs = [
        {"namespace": namespace, "name": name, "digest": digest}
        for (namespace, name), digest in sorted(store.refs().items())
    ]
    return {"stats": store.stats(), "artifacts": artifacts, "refs": refs}


def gc_store(store: ArtifactStore, dry_run: bool = False) -> GcReport:
    """Run (or preview) a reachability garbage collection."""
    return store.gc(dry_run=dry_run)


def migrate_store(
    store: ArtifactStore, to_codec: str, kinds: Optional[List[str]] = None
) -> Dict[str, Any]:
    """Transcode stored artifacts to ``to_codec`` and repoint their refs.

    Every artifact whose *kind* matches the target codec's (optionally
    narrowed by ``kinds``) and that is not already stored by it is
    decoded through its recorded codec/version — running any pending
    migrations — and re-encoded.  Refs follow the content to its new
    digest; the superseded blobs stay until the next :func:`gc_store`.
    """
    target = get_codec(to_codec)
    wanted = set(kinds) if kinds else {target.kind}
    migrated: List[Dict[str, str]] = []
    skipped = 0
    repointed = 0
    mapping: Dict[str, str] = {}
    for info in list(store.artifacts()):
        if info.kind not in wanted:
            continue
        if info.codec == target.name and info.version == target.version:
            skipped += 1
            continue
        obj = store.get(info.digest)
        new_info = store.put(
            obj, target.name, meta={**info.meta, "migrated_from": info.digest}
        )
        mapping[info.digest] = new_info.digest
        migrated.append({"from": info.digest, "to": new_info.digest})
    for (namespace, name), digest in store.refs().items():
        if digest in mapping:
            store.set_ref(namespace, name, mapping[digest])
            repointed += 1
    return {
        "to_codec": target.name,
        "kind": sorted(wanted),
        "migrated": migrated,
        "skipped": skipped,
        "refs_repointed": repointed,
    }


def add_file(
    store: ArtifactStore,
    path: PathLike,
    codec_name: str,
    ref: Optional[str] = None,
    namespace: str = "manual",
) -> Dict[str, Any]:
    """Validate a file through a codec and add it to the store.

    The bytes are decoded first — a file the codec rejects never enters
    the store — then re-encoded canonically, so equivalent inputs
    dedupe to one digest.  With ``ref``, a ``refs/<namespace>/<ref>``
    pointer is created (protecting the artifact from gc).
    """
    path = Path(path)
    codec = get_codec(codec_name)
    obj = codec.decode(path.read_bytes())
    info = store.put(obj, codec.name, meta={"source": str(path)})
    if ref:
        store.set_ref(namespace, ref, info.digest)
    return {
        "digest": info.digest,
        "kind": info.kind,
        "codec": info.codec,
        "version": info.version,
        "size": info.size,
        "ref": f"{namespace}/{ref}" if ref else None,
    }

"""The compact columnar binary trace format (``trace-bin``, version 1).

A :class:`~repro.offline.trace.DeviceTrace` is dominated by its power
channels — tens of thousands of ``(time, power)`` breakpoints that JSON
spells out as decimal text (~35 bytes each).  This format packs them as
raw little-endian doubles (16 bytes per breakpoint, bit-exact), keeps
the small irregular parts (app table, foreground timeline, attack
links, channel directory) as one JSON header, and seals the whole
document with a CRC32 footer so truncation and bit-rot are detected
instead of silently mis-decoded.

Layout::

    offset 0   magic      8s   b"REPROTRC"
    offset 8   version    u16  format version (currently 1)
    offset 10  flags      u16  reserved, must be 0
    offset 12  header_len u32  byte length of the JSON header
    offset 16  header     JSON (utf-8): captured_at, battery_capacity_j,
                          apps, system_uids, foreground, links, and the
                          channel directory [{owner, component, count}]
    ...        payload    per channel, in directory order:
                          count doubles of times, count doubles of powers
    trailer    crc32      u32  zlib.crc32 of every preceding byte

All integers and doubles are little-endian.  Because the directory
carries per-channel counts, a reader can locate any channel's columns
by offset arithmetic alone — :class:`LazyBinaryTrace` decodes only the
channels (and only the time window) a query touches.

Every malformed input raises
:class:`~repro.offline.trace.TraceFormatError`; decoding never lets a
raw ``struct.error`` / ``KeyError`` / ``UnicodeDecodeError`` escape.
"""

from __future__ import annotations

import bisect
import json
import struct
import sys
import zlib
from array import array
from typing import Any, Dict, List, Optional, Tuple

from ..offline.trace import (
    ChannelTrace,
    DeviceTrace,
    LinkRecord,
    TraceFormatError,
)

MAGIC = b"REPROTRC"
BINARY_FORMAT_VERSION = 1

_PREAMBLE = struct.Struct("<8sHHI")  # magic, version, flags, header_len
_FOOTER = struct.Struct("<I")  # crc32
_DOUBLE_SIZE = 8


def is_binary_trace(data: bytes) -> bool:
    """Whether ``data`` starts with the binary trace magic."""
    return bytes(data[: len(MAGIC)]) == MAGIC


def _pack_doubles(values: List[float]) -> bytes:
    arr = array("d", values)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        arr.byteswap()
    return arr.tobytes()


def _unpack_doubles(data: bytes) -> List[float]:
    arr = array("d")
    arr.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        arr.byteswap()
    return arr.tolist()


def encode_trace(trace: DeviceTrace) -> bytes:
    """Serialise a :class:`DeviceTrace` to the binary format."""
    header: Dict[str, Any] = {
        "captured_at": trace.captured_at,
        "battery_capacity_j": trace.battery_capacity_j,
        "apps": {str(uid): label for uid, label in trace.apps.items()},
        "system_uids": list(trace.system_uids),
        "foreground": [[t, uid] for t, uid in trace.foreground],
        "links": [
            {
                "kind": link.kind,
                "driving_uid": link.driving_uid,
                "target": link.target,
                "begin_time": link.begin_time,
                "end_time": link.end_time,
            }
            for link in trace.links
        ],
        "channels": [
            {
                "owner": ch.owner,
                "component": ch.component,
                "count": len(ch.breakpoints),
            }
            for ch in trace.channels
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    parts = [
        _PREAMBLE.pack(MAGIC, BINARY_FORMAT_VERSION, 0, len(header_bytes)),
        header_bytes,
    ]
    for channel in trace.channels:
        times = [t for t, _ in channel.breakpoints]
        powers = [p for _, p in channel.breakpoints]
        parts.append(_pack_doubles(times))
        parts.append(_pack_doubles(powers))
    body = b"".join(parts)
    return body + _FOOTER.pack(zlib.crc32(body) & 0xFFFFFFFF)


class LazyBinaryTrace:
    """A binary trace document opened for selective decoding.

    Construction validates the framing (magic, version, CRC32, channel
    directory vs payload length) and parses only the JSON header; the
    packed breakpoint columns stay as bytes until a channel is asked
    for.  :meth:`breakpoints` additionally takes a ``[start, end)``
    window and returns only the breakpoints that window needs — the one
    active at ``start`` plus every change strictly before ``end``.
    """

    def __init__(self, data: bytes) -> None:
        data = bytes(data)
        if len(data) < _PREAMBLE.size + _FOOTER.size:
            raise TraceFormatError(
                f"binary trace truncated: {len(data)} byte(s) is smaller "
                f"than the fixed framing"
            )
        magic, version, flags, header_len = _PREAMBLE.unpack_from(data, 0)
        if magic != MAGIC:
            raise TraceFormatError(
                f"not a binary trace: bad magic {magic!r} (expected {MAGIC!r})"
            )
        if version != BINARY_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported binary trace version {version} "
                f"(expected {BINARY_FORMAT_VERSION})"
            )
        if flags != 0:
            raise TraceFormatError(f"unsupported binary trace flags {flags:#x}")
        body, footer = data[: -_FOOTER.size], data[-_FOOTER.size :]
        (crc,) = _FOOTER.unpack(footer)
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise TraceFormatError(
                "binary trace failed its CRC32 check (truncated or corrupted)"
            )
        header_end = _PREAMBLE.size + header_len
        if header_end > len(body):
            raise TraceFormatError(
                f"binary trace header length {header_len} overruns the document"
            )
        try:
            header = json.loads(body[_PREAMBLE.size : header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(
                f"binary trace header is not valid JSON: {exc}"
            ) from exc
        if not isinstance(header, dict):
            raise TraceFormatError("binary trace header must be a JSON object")
        self._payload = body[header_end:]
        try:
            self.captured_at = float(header["captured_at"])
            self.battery_capacity_j = float(header.get("battery_capacity_j", 0.0))
            self.apps = {
                int(uid): label for uid, label in header.get("apps", {}).items()
            }
            self.system_uids = [int(uid) for uid in header.get("system_uids", [])]
            self.foreground = [
                (float(t), None if uid is None else int(uid))
                for t, uid in header.get("foreground", [])
            ]
            self.links = [
                LinkRecord(
                    kind=link["kind"],
                    driving_uid=int(link["driving_uid"]),
                    target=int(link["target"]),
                    begin_time=float(link["begin_time"]),
                    end_time=(
                        None if link["end_time"] is None else float(link["end_time"])
                    ),
                )
                for link in header.get("links", [])
            ]
            directory = [
                (int(ch["owner"]), str(ch["component"]), int(ch["count"]))
                for ch in header.get("channels", [])
            ]
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise TraceFormatError(
                f"binary trace header is truncated or malformed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self._directory: List[Tuple[int, str, int]] = []
        self._offsets: Dict[Tuple[int, str], Tuple[int, int]] = {}
        offset = 0
        for owner, component, count in directory:
            if count < 0:
                raise TraceFormatError(
                    f"channel ({owner}, {component!r}) has negative count {count}"
                )
            self._directory.append((owner, component, count))
            self._offsets[(owner, component)] = (offset, count)
            offset += 2 * count * _DOUBLE_SIZE
        if offset != len(self._payload):
            raise TraceFormatError(
                f"binary trace payload is {len(self._payload)} byte(s) but the "
                f"channel directory describes {offset}"
            )

    # ------------------------------------------------------------------
    # selective decode
    # ------------------------------------------------------------------
    def channels(self) -> List[Tuple[int, str, int]]:
        """The channel directory: ``(owner, component, count)`` triples."""
        return list(self._directory)

    def columns(self, owner: int, component: str) -> Tuple[List[float], List[float]]:
        """One channel's ``(times, powers)`` columns, fully decoded."""
        try:
            offset, count = self._offsets[(owner, component)]
        except KeyError as exc:
            raise TraceFormatError(
                f"no channel ({owner}, {component!r}) in this trace"
            ) from exc
        span = count * _DOUBLE_SIZE
        times = _unpack_doubles(self._payload[offset : offset + span])
        powers = _unpack_doubles(self._payload[offset + span : offset + 2 * span])
        return times, powers

    def breakpoints(
        self,
        owner: int,
        component: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """One channel's breakpoints, optionally windowed to ``[start, end)``.

        The windowed form keeps the breakpoint *active* at ``start`` (the
        last one at or before it) so piecewise-constant energy queries
        over the window see the correct initial draw.
        """
        times, powers = self.columns(owner, component)
        lo, hi = 0, len(times)
        if start is not None:
            lo = max(0, bisect.bisect_right(times, start) - 1)
        if end is not None:
            hi = bisect.bisect_left(times, end)
        return list(zip(times[lo:hi], powers[lo:hi]))

    def to_trace(self) -> DeviceTrace:
        """Decode the full document into a :class:`DeviceTrace`."""
        trace = DeviceTrace(
            captured_at=self.captured_at,
            battery_capacity_j=self.battery_capacity_j,
            apps=dict(self.apps),
            system_uids=list(self.system_uids),
            foreground=list(self.foreground),
            links=list(self.links),
        )
        for owner, component, _count in self._directory:
            times, powers = self.columns(owner, component)
            trace.channels.append(
                ChannelTrace(
                    owner=owner,
                    component=component,
                    breakpoints=list(zip(times, powers)),
                )
            )
        return trace


def decode_trace(data: bytes) -> DeviceTrace:
    """Parse a binary trace document into a :class:`DeviceTrace`."""
    return LazyBinaryTrace(data).to_trace()

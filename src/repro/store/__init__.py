"""repro.store — the content-addressed, schema-versioned artifact store.

One substrate for every durable artifact the system produces: exec
results, device traces (JSON or columnar binary), serve sessions, and
conformance-corpus entries.  Blobs are keyed by SHA-256 content digest;
each records the codec and format version that wrote it, and named refs
make artifacts reachable (and gc-safe).  See ``docs/STORAGE.md``.
"""

from .artifact import (
    STORE_ENV_VAR,
    STORE_SCHEMA,
    ArtifactCorruptError,
    ArtifactInfo,
    ArtifactNotFoundError,
    ArtifactStore,
    GcReport,
    StoreError,
    content_digest,
    default_store_dir,
)
from .binfmt import (
    BINARY_FORMAT_VERSION,
    MAGIC,
    LazyBinaryTrace,
    decode_trace,
    encode_trace,
    is_binary_trace,
)
from .codecs import (
    CODECS,
    CORPUS_KIND,
    CORPUS_SCHEMA,
    MIGRATIONS,
    Codec,
    CodecError,
    CorpusJsonCodec,
    JsonCodec,
    TraceBinaryCodec,
    TraceJsonCodec,
    UnknownCodecError,
    decode_artifact,
    get_codec,
    migration_path,
    register_codec,
    register_migration,
)
from .admin import add_file, gc_store, inspect_store, migrate_store

__all__ = [
    "ArtifactCorruptError",
    "ArtifactInfo",
    "ArtifactNotFoundError",
    "ArtifactStore",
    "BINARY_FORMAT_VERSION",
    "CODECS",
    "CORPUS_KIND",
    "CORPUS_SCHEMA",
    "Codec",
    "CodecError",
    "CorpusJsonCodec",
    "GcReport",
    "JsonCodec",
    "LazyBinaryTrace",
    "MAGIC",
    "MIGRATIONS",
    "STORE_ENV_VAR",
    "STORE_SCHEMA",
    "StoreError",
    "TraceBinaryCodec",
    "TraceJsonCodec",
    "UnknownCodecError",
    "add_file",
    "content_digest",
    "decode_artifact",
    "decode_trace",
    "default_store_dir",
    "encode_trace",
    "gc_store",
    "get_codec",
    "inspect_store",
    "is_binary_trace",
    "migrate_store",
    "migration_path",
    "register_codec",
    "register_migration",
]

"""The content-addressed artifact store.

One directory holds every durable artifact the system produces —
device traces, experiment results, corpus entries — as digest-keyed
blobs plus human-meaningful *refs* pointing at them:

* ``objects/<d2>/<digest>`` — the raw codec bytes; the file name is the
  SHA-256 of the content, so identical artifacts dedupe for free and a
  flipped bit is detected on read instead of silently decoded.
* ``meta/<digest>.json`` — the artifact manifest: which codec wrote it,
  at which format version, how big it is, plus free-form metadata.
* ``refs/<namespace>/<name>.json`` — a named pointer to a digest
  (exec-cache keys, serve sessions, memoized corpus replays).  Refs are
  the GC roots: :meth:`ArtifactStore.gc` deletes every object no ref
  reaches.

Writes are atomic (tmp file + rename) and idempotent by digest.  The
default location is ``$REPRO_STORE_DIR``, else
``$XDG_DATA_HOME/repro/store``, else ``~/.local/share/repro/store``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import quote, unquote

from ..faults import fault_point, filter_read, filter_write
from .codecs import decode_artifact, get_codec

PathLike = Union[str, Path]

STORE_ENV_VAR = "REPRO_STORE_DIR"
STORE_SCHEMA = 1


def default_store_dir() -> Path:
    """The store directory used when none is given explicitly."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_DATA_HOME")
    base = Path(xdg) if xdg else Path.home() / ".local" / "share"
    return base / "repro" / "store"


class StoreError(RuntimeError):
    """Something about the store itself went wrong."""


class ArtifactNotFoundError(StoreError):
    """A digest has no object in this store."""

    def __init__(self, digest: str) -> None:
        super().__init__(f"no artifact {digest!r} in the store")
        self.digest = digest


class ArtifactCorruptError(StoreError):
    """An object's bytes no longer hash to its digest."""

    def __init__(self, digest: str, actual: str) -> None:
        super().__init__(
            f"artifact {digest!r} is corrupt: content hashes to {actual!r}"
        )
        self.digest = digest
        self.actual = actual


@dataclass(frozen=True)
class ArtifactInfo:
    """One artifact's manifest record."""

    digest: str
    kind: str
    codec: str
    version: int
    size: int
    created_at: float
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what ``meta/<digest>.json`` holds)."""
        return {
            "schema": STORE_SCHEMA,
            "digest": self.digest,
            "kind": self.kind,
            "codec": self.codec,
            "version": self.version,
            "size": self.size,
            "created_at": self.created_at,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArtifactInfo":
        """Rebuild from :meth:`to_dict` data."""
        return cls(
            digest=str(data["digest"]),
            kind=str(data["kind"]),
            codec=str(data["codec"]),
            version=int(data["version"]),
            size=int(data["size"]),
            created_at=float(data.get("created_at", 0.0)),
            meta=dict(data.get("meta", {})),
        )


@dataclass
class GcReport:
    """What one garbage-collection pass did (or would do)."""

    scanned: int = 0
    live: int = 0
    removed: int = 0
    freed_bytes: int = 0
    dry_run: bool = False
    removed_digests: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for the CLI)."""
        return {
            "scanned": self.scanned,
            "live": self.live,
            "removed": self.removed,
            "freed_bytes": self.freed_bytes,
            "dry_run": self.dry_run,
            "removed_digests": list(self.removed_digests),
        }


def content_digest(data: bytes) -> str:
    """The store's content address: SHA-256 hex of the raw bytes."""
    return hashlib.sha256(data).hexdigest()


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); no-op where unsupported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


class ArtifactStore:
    """Digest-keyed blobs + typed codecs + named refs under one root."""

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = Path(directory) if directory else default_store_dir()
        self._bus = None  # lazily created so capture() can hook it

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def object_path(self, digest: str) -> Path:
        """Where a digest's blob lives."""
        return self.directory / "objects" / digest[:2] / digest

    def meta_path(self, digest: str) -> Path:
        """Where a digest's manifest lives."""
        return self.directory / "meta" / f"{digest}.json"

    def ref_path(self, namespace: str, name: str) -> Path:
        """Where a named pointer lives (name percent-encoded)."""
        return self.directory / "refs" / namespace / f"{quote(name, safe='')}.json"

    # ------------------------------------------------------------------
    # blobs
    # ------------------------------------------------------------------
    def put_bytes(
        self,
        data: bytes,
        kind: str,
        codec: str,
        version: int,
        meta: Optional[Dict[str, Any]] = None,
        durable: bool = False,
    ) -> ArtifactInfo:
        """Store raw codec output; idempotent by content digest.

        ``durable=True`` fsyncs the blob and manifest (file and
        directory) before the publish — the write survives a crash and
        cannot be torn, at the cost of the syncs.
        """
        digest = content_digest(data)
        info = ArtifactInfo(
            digest=digest,
            kind=kind,
            codec=codec,
            version=version,
            size=len(data),
            created_at=time.time(),
            meta=dict(meta or {}),
        )
        blob = self.object_path(digest)
        if not blob.exists():
            self._atomic_write(blob, data, durable=durable)
        manifest = self.meta_path(digest)
        if not manifest.exists():
            self._atomic_write(
                manifest,
                json.dumps(info.to_dict(), indent=2, sort_keys=True).encode("utf-8"),
                durable=durable,
            )
        self._publish_stored(info)
        return info

    def put(
        self,
        obj: Any,
        codec_name: str,
        meta: Optional[Dict[str, Any]] = None,
        durable: bool = False,
    ) -> ArtifactInfo:
        """Encode ``obj`` with a registered codec and store the bytes."""
        codec = get_codec(codec_name)
        return self.put_bytes(
            codec.encode(obj), codec.kind, codec.name, codec.version, meta,
            durable=durable,
        )

    def evict(self, digest: str) -> bool:
        """Drop one object (blob + manifest) so a re-put can rewrite it.

        The repair path for detected corruption: :meth:`put_bytes` is
        idempotent by digest and will not overwrite an existing — possibly
        torn — blob, so the bad bytes must be evicted first.  Returns
        whether a blob existed.
        """
        blob = self.object_path(digest)
        existed = blob.is_file()
        blob.unlink(missing_ok=True)
        self.meta_path(digest).unlink(missing_ok=True)
        return existed

    def has(self, digest: str) -> bool:
        """Whether a blob for ``digest`` exists."""
        return self.object_path(digest).is_file()

    def get_bytes(self, digest: str, verify: bool = True) -> bytes:
        """Read a blob back, verifying its content address by default."""
        try:
            data = self.object_path(digest).read_bytes()
        except OSError as exc:
            raise ArtifactNotFoundError(digest) from exc
        data = filter_read("store.read", data)
        if verify:
            actual = content_digest(data)
            if actual != digest:
                raise ArtifactCorruptError(digest, actual)
        return data

    def info(self, digest: str) -> ArtifactInfo:
        """An artifact's manifest record."""
        try:
            data = json.loads(self.meta_path(digest).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ArtifactNotFoundError(digest) from exc
        except (ValueError, KeyError) as exc:
            raise StoreError(f"manifest for {digest!r} is malformed: {exc}") from exc
        try:
            return ArtifactInfo.from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"manifest for {digest!r} is malformed: {exc}") from exc

    def get(self, digest: str) -> Any:
        """Load and decode one artifact (running migrations as needed)."""
        info = self.info(digest)
        data = self.get_bytes(digest)
        return decode_artifact(info.codec, data, info.version)

    def artifacts(self) -> Iterator[ArtifactInfo]:
        """Every artifact manifest in the store (sorted by digest)."""
        meta_dir = self.directory / "meta"
        if not meta_dir.is_dir():
            return
        for path in sorted(meta_dir.glob("*.json")):
            try:
                yield ArtifactInfo.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue  # surfaced by verify(), not by iteration

    # ------------------------------------------------------------------
    # refs
    # ------------------------------------------------------------------
    def set_ref(
        self, namespace: str, name: str, digest: str, durable: bool = False
    ) -> Path:
        """Point ``refs/<namespace>/<name>`` at ``digest``."""
        path = self.ref_path(namespace, name)
        self._atomic_write(
            path,
            json.dumps(
                {"digest": digest, "updated_at": time.time()}, sort_keys=True
            ).encode("utf-8"),
            durable=durable,
        )
        return path

    def get_ref(self, namespace: str, name: str) -> Optional[str]:
        """The digest a ref points at, or None (malformed counts as None)."""
        try:
            data = json.loads(
                self.ref_path(namespace, name).read_text(encoding="utf-8")
            )
            return str(data["digest"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def delete_ref(self, namespace: str, name: str) -> bool:
        """Remove a ref; returns whether it existed."""
        path = self.ref_path(namespace, name)
        if path.is_file():
            path.unlink()
            return True
        return False

    def refs(self, namespace: Optional[str] = None) -> Dict[Tuple[str, str], str]:
        """Every ref (optionally one namespace) as ``(ns, name) -> digest``."""
        refs_dir = self.directory / "refs"
        out: Dict[Tuple[str, str], str] = {}
        if not refs_dir.is_dir():
            return out
        spaces = (
            [refs_dir / namespace]
            if namespace is not None
            else sorted(p for p in refs_dir.iterdir() if p.is_dir())
        )
        for space in spaces:
            if not space.is_dir():
                continue
            for path in sorted(space.glob("*.json")):
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    digest = str(data["digest"])
                except (OSError, ValueError, KeyError, TypeError):
                    continue
                out[(space.name, unquote(path.stem))] = digest
        return out

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def gc(self, dry_run: bool = False) -> GcReport:
        """Delete every object no ref reaches; refs are the only roots."""
        live = set(self.refs().values())
        report = GcReport(dry_run=dry_run)
        objects_dir = self.directory / "objects"
        if not objects_dir.is_dir():
            return report
        for blob in sorted(objects_dir.glob("*/*")):
            if not blob.is_file():
                continue
            report.scanned += 1
            digest = blob.name
            if digest in live:
                report.live += 1
                continue
            report.removed += 1
            report.freed_bytes += blob.stat().st_size
            report.removed_digests.append(digest)
            if not dry_run:
                blob.unlink(missing_ok=True)
                self.meta_path(digest).unlink(missing_ok=True)
        return report

    def verify(self) -> List[str]:
        """Re-hash every object and cross-check refs; returns problems."""
        problems: List[str] = []
        objects_dir = self.directory / "objects"
        seen = set()
        if objects_dir.is_dir():
            for blob in sorted(objects_dir.glob("*/*")):
                if not blob.is_file():
                    continue
                digest = blob.name
                seen.add(digest)
                actual = content_digest(blob.read_bytes())
                if actual != digest:
                    problems.append(
                        f"object {digest} is corrupt (hashes to {actual})"
                    )
                elif not self.meta_path(digest).is_file():
                    problems.append(f"object {digest} has no manifest")
        for (namespace, name), digest in self.refs().items():
            if digest not in seen:
                problems.append(
                    f"ref {namespace}/{name} dangles (no object {digest})"
                )
        return problems

    def stats(self) -> Dict[str, Any]:
        """Object/ref counts and total payload bytes (for manifests)."""
        objects = 0
        total = 0
        objects_dir = self.directory / "objects"
        if objects_dir.is_dir():
            for blob in objects_dir.glob("*/*"):
                if blob.is_file():
                    objects += 1
                    total += blob.stat().st_size
        return {
            "directory": str(self.directory),
            "objects": objects,
            "bytes": total,
            "refs": len(self.refs()),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, data: bytes, durable: bool = False) -> None:
        data = filter_write("store.write", data, durable=durable)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        if durable:
            with open(tmp, "wb") as handle:
                handle.write(data)
                fault_point("store.fsync")
                handle.flush()
                os.fsync(handle.fileno())
        else:
            tmp.write_bytes(data)
        tmp.replace(path)
        if durable:
            _fsync_dir(path.parent)

    def _publish_stored(self, info: ArtifactInfo) -> None:
        from ..telemetry import ArtifactStoredEvent, TelemetryBus

        if self._bus is None:
            self._bus = TelemetryBus()
        self._bus.publish(
            ArtifactStoredEvent(
                time=0.0,
                digest=info.digest,
                kind=info.kind,
                codec=info.codec,
                size=info.size,
            )
        )

"""Typed codecs — how artifacts turn into bytes and back, with versions.

Every artifact in the :class:`~repro.store.ArtifactStore` records which
codec produced it and at which *format version*.  A :class:`Codec`
pairs ``encode(obj) -> bytes`` with ``decode(bytes) -> obj`` for its
current version; :func:`register_migration` attaches byte-level
upgrade hooks (``from_version -> from_version + 1``) so a store written
by an older release decodes through a chain of explicit migrations
instead of failing (or, worse, mis-parsing).

Built-in codecs:

========== ============== =======================================
name        kind           payload
========== ============== =======================================
json        document       any JSON document (exec-cache entries)
trace-json  device-trace   ``DeviceTrace.to_json()`` text
trace-bin   device-trace   the columnar binary format (binfmt)
corpus-json check-corpus   conformance-corpus entry documents
========== ============== =======================================

``trace-json`` and ``trace-bin`` share a kind, which is what lets
``repro store migrate --to-codec trace-bin`` transcode every stored
trace without knowing anything trace-specific.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Tuple

from ..offline.trace import TRACE_FORMAT_VERSION, DeviceTrace, TraceFormatError
from .binfmt import BINARY_FORMAT_VERSION, decode_trace, encode_trace

#: Schema of conformance-corpus entry documents (mirrored by
#: :mod:`repro.check.campaign`, which imports it from here).
CORPUS_SCHEMA = 1

#: The corpus-entry marker (also re-exported by :mod:`repro.serve.ingest`).
CORPUS_KIND = "repro-check-corpus"


class CodecError(ValueError):
    """An artifact payload could not be encoded or decoded."""


class UnknownCodecError(KeyError):
    """A codec name is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown codec {self.name!r}; "
            f"registered: {', '.join(sorted(CODECS))}"
        )


class Codec:
    """One named serialisation format at its current version."""

    name: str = "abstract"
    kind: str = "object"
    version: int = 1

    def encode(self, obj: Any) -> bytes:
        """Serialise ``obj`` at the current format version."""
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        """Parse current-version bytes (raise :class:`CodecError` family)."""
        raise NotImplementedError


CODECS: Dict[str, Codec] = {}

#: (codec name, from_version) -> bytes-level one-step upgrade hook.
MIGRATIONS: Dict[Tuple[str, int], Callable[[bytes], bytes]] = {}


def register_codec(codec: Codec) -> Codec:
    """Add a codec to the registry (re-registration replaces)."""
    CODECS[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look a codec up by name."""
    try:
        return CODECS[name]
    except KeyError:
        raise UnknownCodecError(name) from None


def register_migration(
    name: str, from_version: int, hook: Callable[[bytes], bytes]
) -> None:
    """Attach a one-step upgrade: ``from_version -> from_version + 1``."""
    MIGRATIONS[(name, from_version)] = hook


def migration_path(name: str, from_version: int) -> List[int]:
    """The chain of versions a decode would walk (empty when current)."""
    codec = get_codec(name)
    path: List[int] = []
    version = from_version
    while version < codec.version:
        if (name, version) not in MIGRATIONS:
            return []
        path.append(version)
        version += 1
    return path


def decode_artifact(name: str, data: bytes, version: int) -> Any:
    """Decode stored bytes written at ``version`` by codec ``name``.

    Older versions are upgraded through the registered migration chain
    first; a missing migration step, or a version *newer* than the
    codec understands, raises :class:`CodecError`.
    """
    codec = get_codec(name)
    if version > codec.version:
        raise CodecError(
            f"artifact was written by codec {name!r} version {version}, "
            f"newer than this build's {codec.version}"
        )
    while version < codec.version:
        hook = MIGRATIONS.get((name, version))
        if hook is None:
            raise CodecError(
                f"no migration from codec {name!r} version {version} "
                f"to {version + 1}"
            )
        data = hook(data)
        version += 1
    return codec.decode(data)


# ----------------------------------------------------------------------
# built-in codecs
# ----------------------------------------------------------------------
class JsonCodec(Codec):
    """Any JSON document, canonically encoded (sorted keys, no spaces)."""

    name = "json"
    kind = "document"
    version = 1

    def encode(self, obj: Any) -> bytes:
        try:
            return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        except (TypeError, ValueError) as exc:
            raise CodecError(f"document is not JSON-serialisable: {exc}") from exc

    def decode(self, data: bytes) -> Any:
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"document is not valid JSON: {exc}") from exc


class TraceJsonCodec(Codec):
    """A :class:`DeviceTrace` as its single-document JSON text."""

    name = "trace-json"
    kind = "device-trace"
    version = TRACE_FORMAT_VERSION

    def encode(self, obj: DeviceTrace) -> bytes:
        return obj.to_json().encode("utf-8")

    def decode(self, data: bytes) -> DeviceTrace:
        try:
            return DeviceTrace.from_json(data.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"trace is not valid UTF-8: {exc}") from exc


class TraceBinaryCodec(Codec):
    """A :class:`DeviceTrace` in the columnar binary format."""

    name = "trace-bin"
    kind = "device-trace"
    version = BINARY_FORMAT_VERSION

    def encode(self, obj: DeviceTrace) -> bytes:
        return encode_trace(obj)

    def decode(self, data: bytes) -> DeviceTrace:
        return decode_trace(data)


class CorpusJsonCodec(Codec):
    """One conformance-corpus entry document (validating kind + schema).

    Encoding preserves the corpus directory's on-disk convention
    (indent-2, sorted keys) so store-written and directly-written
    entries stay byte-identical and diff-friendly.
    """

    name = "corpus-json"
    kind = "check-corpus"
    version = CORPUS_SCHEMA

    def encode(self, obj: Dict[str, Any]) -> bytes:
        if obj.get("kind") != CORPUS_KIND:
            raise CodecError(
                f"document kind {obj.get('kind')!r} is not a "
                f"{CORPUS_KIND!r} entry"
            )
        if obj.get("schema") != CORPUS_SCHEMA:
            raise CodecError(
                f"unsupported corpus schema {obj.get('schema')!r} "
                f"(expected {CORPUS_SCHEMA})"
            )
        try:
            return json.dumps(obj, indent=2, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"corpus entry is not JSON-serialisable: {exc}") from exc

    def decode(self, data: bytes) -> Dict[str, Any]:
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"corpus entry is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise CodecError("corpus entry must be a JSON object")
        if document.get("kind") != CORPUS_KIND:
            raise CodecError(
                f"document is not a {CORPUS_KIND!r} entry "
                f"(kind={document.get('kind')!r})"
            )
        if document.get("schema") != CORPUS_SCHEMA:
            raise CodecError(
                f"unsupported corpus schema {document.get('schema')!r} "
                f"(expected {CORPUS_SCHEMA})"
            )
        return document


register_codec(JsonCodec())
register_codec(TraceJsonCodec())
register_codec(TraceBinaryCodec())
register_codec(CorpusJsonCodec())

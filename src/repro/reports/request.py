"""Typed report requests — the one query shape every backend answers.

A :class:`ReportRequest` names a *backend* (which attribution policy or
raw view to render), a time *window*, and optionally the *owners* the
caller cares about.  It is frozen and hashable, so it doubles as the
cache key for the serving layer's LRU (:mod:`repro.serve.service`) and
round-trips through JSON for the wire protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: Every report surface the unified API can render.
#:
#: * ``energy`` — raw per-owner ground truth from the meter/trace;
#: * ``batterystats`` — the stock Android policy (screen standalone);
#: * ``powertutor`` — screen redistributed over the foreground timeline;
#: * ``eandroid`` — baseline plus superimposed collateral charges;
#: * ``collateral`` — per-host collateral breakdowns only.
BACKENDS: Tuple[str, ...] = (
    "energy",
    "batterystats",
    "powertutor",
    "eandroid",
    "collateral",
)


class UnknownBackendError(ValueError):
    """Raised when a request names a backend outside :data:`BACKENDS`."""

    def __init__(self, backend: str) -> None:
        super().__init__(
            f"unknown report backend {backend!r} "
            f"(expected one of: {', '.join(BACKENDS)})"
        )
        self.backend = backend


@dataclass(frozen=True)
class ReportRequest:
    """One report query: backend + window + optional owner filter.

    ``end=None`` means "to the end of the data" (a live device's *now*,
    a trace's ``captured_at``).  ``owners`` restricts the rows returned:
    for the profiler backends it filters by uid, for ``collateral`` it
    selects the driving hosts.
    """

    backend: str
    start: float = 0.0
    end: Optional[float] = None
    owners: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise UnknownBackendError(self.backend)
        if self.start < 0.0:
            raise ValueError(f"window start must be >= 0, got {self.start!r}")
        if self.end is not None and self.end < self.start:
            raise ValueError(
                f"window end {self.end!r} precedes start {self.start!r}"
            )
        if self.owners is not None:
            normalized = tuple(sorted(int(uid) for uid in self.owners))
            object.__setattr__(self, "owners", normalized)

    def key(self) -> Tuple[Any, ...]:
        """Hashable identity (what result caches key on)."""
        return (self.backend, self.start, self.end, self.owners)

    def window(self, end_default: float) -> Tuple[float, float]:
        """The concrete (start, end) given the data's natural end."""
        return (self.start, end_default if self.end is None else self.end)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the wire shape of one query)."""
        return {
            "backend": self.backend,
            "start": self.start,
            "end": self.end,
            "owners": list(self.owners) if self.owners is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReportRequest":
        """Parse the :meth:`to_dict` shape (validating as it builds)."""
        owners = data.get("owners")
        return cls(
            backend=str(data["backend"]),
            start=float(data.get("start", 0.0)),
            end=None if data.get("end") is None else float(data["end"]),
            owners=None if owners is None else tuple(int(o) for o in owners),
        )

"""The unified report view — one shape for every report surface.

Historically the four report surfaces (BatteryStats, PowerTutor, the
E-Android interface, the offline analyzer) were consumed through
surface-specific calls and ad-hoc dict conversions.  :class:`ReportView`
is the one protocol they all now answer through: typed rows, a total, a
collateral inventory, and a schema-versioned ``to_dict()`` that is the
wire form the serving layer returns.

:class:`ProfilerReportView` is the concrete adapter over the existing
:class:`~repro.accounting.base.ProfilerReport`; the legacy dict helpers
in :mod:`repro.export` are deprecation shims over it (and are asserted
byte-identical by regression test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

try:  # pragma: no cover - typing_extensions never needed on >=3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..accounting.base import AppEnergyEntry, ProfilerReport
    from .request import ReportRequest

#: Version tag stamped into every ``ReportView.to_dict()`` document.
REPORT_SCHEMA = "repro.report/1"


@runtime_checkable
class ReportView(Protocol):
    """What every rendered report exposes, regardless of backend."""

    backend: str

    def rows(self) -> List["AppEnergyEntry"]:
        """The report rows (independent copies; callers may mutate)."""
        ...

    def total_j(self) -> float:
        """Total joules across every row."""
        ...

    def collateral(self) -> Dict[str, Dict[str, float]]:
        """Per-row collateral inventories: row label -> source -> joules."""
        ...

    def to_dict(self) -> Dict[str, Any]:
        """Schema-versioned JSON-ready form (the wire shape)."""
        ...


@dataclass(frozen=True)
class ProfilerReportView:
    """A :class:`ProfilerReport` adapted to the :class:`ReportView` protocol."""

    backend: str
    report: "ProfilerReport"

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def rows(self) -> List["AppEnergyEntry"]:
        """Independent copies of the report's entries."""
        return [entry.copy() for entry in self.report.entries]

    def total_j(self) -> float:
        """Sum over all rows."""
        return self.report.total_energy_j()

    def collateral(self) -> Dict[str, Dict[str, float]]:
        """label -> {source -> joules} for rows carrying collateral."""
        return {
            entry.label: dict(entry.collateral_j)
            for entry in self.report.entries
            if entry.collateral_j
        }

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned wire form.

        Everything the legacy ``repro.export.report_to_dict`` emitted,
        plus the ``schema``/``backend``/``total_j`` envelope fields.
        """
        return {
            "schema": REPORT_SCHEMA,
            "backend": self.backend,
            "profiler": self.report.profiler,
            "window": {"start_s": self.report.start, "end_s": self.report.end},
            "total_j": self.total_j(),
            "entries": [
                {
                    "uid": entry.uid,
                    "label": entry.label,
                    "energy_j": entry.energy_j,
                    "own_energy_j": entry.own_energy_j,
                    "percent": entry.percent,
                    "is_screen": entry.is_screen,
                    "is_system": entry.is_system,
                    "collateral_j": dict(entry.collateral_j),
                }
                for entry in self.report.entries
            ],
        }

    # ------------------------------------------------------------------
    # conveniences beyond the protocol
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> str:
        """The attribution policy that produced this view."""
        return self.report.profiler

    @property
    def start(self) -> float:
        """Window start (virtual seconds)."""
        return self.report.start

    @property
    def end(self) -> float:
        """Window end (virtual seconds)."""
        return self.report.end

    def render_text(self, top: int = 12) -> str:
        """ASCII battery-interface view (delegates to the report)."""
        return self.report.render_text(top)

    def restrict(self, owners) -> "ProfilerReportView":
        """A copy keeping only rows whose uid is in ``owners``.

        Rows without a uid (Screen / Android OS aggregates) are dropped
        by an owner filter — the caller asked for specific apps.
        """
        from ..accounting.base import ProfilerReport

        wanted = set(owners)
        filtered = ProfilerReport(
            profiler=self.report.profiler,
            start=self.report.start,
            end=self.report.end,
            entries=[
                entry.copy()
                for entry in self.report.entries
                if entry.uid is not None and entry.uid in wanted
            ],
        )
        return ProfilerReportView(backend=self.backend, report=filtered)


def view_from_report(
    report: "ProfilerReport",
    backend: str,
    request: Optional["ReportRequest"] = None,
) -> ProfilerReportView:
    """Wrap a profiler report, applying the request's owner filter."""
    view = ProfilerReportView(backend=backend, report=report)
    if request is not None and request.owners is not None and backend != "collateral":
        view = view.restrict(request.owners)
    return view

"""Unified report API: typed requests, one view protocol for all backends.

Every report surface in the repo — the live profilers in
:mod:`repro.accounting`, the E-Android battery interface in
:mod:`repro.core.interface`, and the offline analyzer in
:mod:`repro.offline` — answers a :class:`ReportRequest` with a
:class:`ReportView`.  The serving layer (:mod:`repro.serve`) speaks
nothing else.
"""

from .request import BACKENDS, ReportRequest, UnknownBackendError
from .view import (
    REPORT_SCHEMA,
    ProfilerReportView,
    ReportView,
    view_from_report,
)

__all__ = [
    "BACKENDS",
    "ReportRequest",
    "UnknownBackendError",
    "REPORT_SCHEMA",
    "ReportView",
    "ProfilerReportView",
    "view_from_report",
]

"""The process-wide fault-injection plane.

One module-global :class:`FaultPlane` (armed by :func:`activate`)
decides, deterministically from a seed, whether each *injection site*
the codebase passes through should misbehave.  Sites are plain string
labels threaded through the store/exec/serve hot paths:

* :func:`fault_point` — a pure control point; may raise
  :class:`InjectedIOError` / :class:`InjectedWorkerCrash` or sleep a
  latency spike, never returns a value.
* :func:`filter_read` — data flowing *out* of a read; may additionally
  corrupt one byte (so digest verification downstream sees real
  corruption).
* :func:`filter_write` — data flowing *into* a write; may additionally
  tear (truncate) the payload — but only when the write is not durable,
  because an fsync'd tmp-file write cannot tear across the rename.

When no plane is armed every helper is a two-global-reads no-op, so
instrumented paths stay bit-identical in behaviour and inside the
perf gate.  When armed, each :class:`~repro.faults.plan.FaultSpec`
draws from its own forked :class:`~repro.sim.rng.SeededRng` stream, so
adding a spec never perturbs another spec's firing sequence and the
whole run replays from ``(plan, seed)``.

The plane propagates into pool workers two ways: fork-start workers
inherit the armed module global directly; spawn-start workers rebuild
it lazily from ``REPRO_FAULTS_PLAN`` / ``REPRO_FAULTS_SEED`` (exported
by :func:`activate`) on their first injection check.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterator, List, Optional

from ..sim.rng import SeededRng, derive_seed
from .plan import FaultPlan

PLAN_ENV_VAR = "REPRO_FAULTS_PLAN"
SEED_ENV_VAR = "REPRO_FAULTS_SEED"

#: Fault kinds that act at a bare control point (fault_point).
_POINT_KINDS = ("io-error", "latency", "crash")


class InjectedIOError(OSError):
    """A deterministic, injected I/O failure (transient by construction)."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected io-error at {site}")
        self.site = site


class InjectedWorkerCrash(RuntimeError):
    """A deterministic, injected worker death."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected worker crash at {site}")
        self.site = site


class FaultPlane:
    """One armed (plan, seed) pair with its per-spec rng streams."""

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self.seed = int(seed)
        # One independent stream per spec: spec i's firing sequence
        # never shifts when another spec is added, removed, or fires.
        self._rngs: List[SeededRng] = [
            SeededRng(derive_seed(self.seed, f"fault:{i}:{spec.site}:{spec.kind}"))
            for i, spec in enumerate(plan.specs)
        ]
        self._spec_counts: List[int] = [0] * len(plan.specs)
        self.checks = 0
        self.injected: Dict[str, int] = {}  # "<site>:<kind>" -> count
        self._site_specs: Dict[str, List[int]] = {}
        self._bus = None  # lazily created so capture() can hook it
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    # injection decisions
    # ------------------------------------------------------------------
    def _specs_for(self, site: str) -> List[int]:
        indices = self._site_specs.get(site)
        if indices is None:
            indices = [
                i
                for i, spec in enumerate(self.plan.specs)
                if fnmatchcase(site, spec.site)
            ]
            self._site_specs[site] = indices
        return indices

    def _fires(self, index: int) -> bool:
        spec = self.plan.specs[index]
        if spec.probability <= 0.0:
            return False
        if (
            spec.max_injections is not None
            and self._spec_counts[index] >= spec.max_injections
        ):
            return False
        return self._rngs[index].bernoulli(spec.probability)

    def _record(self, index: int, site: str, kind: str) -> None:
        self._spec_counts[index] += 1
        key = f"{site}:{kind}"
        self.injected[key] = self.injected.get(key, 0) + 1
        self._publish_injected(site, kind, self.injected[key])

    def check(self, site: str) -> None:
        """Run the point-fault specs matching ``site`` (may raise/sleep)."""
        self.checks += 1
        for index in self._specs_for(site):
            spec = self.plan.specs[index]
            if spec.kind not in _POINT_KINDS or not self._fires(index):
                continue
            self._record(index, site, spec.kind)
            if spec.kind == "latency":
                self._sleep(spec.delay_ms / 1000.0)
            elif spec.kind == "io-error":
                raise InjectedIOError(site)
            else:
                raise InjectedWorkerCrash(site)

    def filter_read(self, site: str, data: bytes) -> bytes:
        """Point faults plus possible one-byte corruption of ``data``."""
        self.checks += 1
        for index in self._specs_for(site):
            spec = self.plan.specs[index]
            if spec.kind == "torn-write" or not self._fires(index):
                continue
            self._record(index, site, spec.kind)
            if spec.kind == "latency":
                self._sleep(spec.delay_ms / 1000.0)
            elif spec.kind == "io-error":
                raise InjectedIOError(site)
            elif spec.kind == "crash":
                raise InjectedWorkerCrash(site)
            elif data:  # corrupt: flip one byte (always changes the value)
                mutated = bytearray(data)
                offset = self._rngs[index].randint(0, len(mutated) - 1)
                mutated[offset] ^= 0xFF
                data = bytes(mutated)
        return data

    def filter_write(self, site: str, data: bytes, durable: bool = False) -> bytes:
        """Point faults plus possible tearing of a non-durable write."""
        self.checks += 1
        for index in self._specs_for(site):
            spec = self.plan.specs[index]
            if spec.kind == "corrupt":
                continue
            if spec.kind == "torn-write" and (durable or not data):
                continue  # an fsync'd write cannot tear
            if not self._fires(index):
                continue
            self._record(index, site, spec.kind)
            if spec.kind == "latency":
                self._sleep(spec.delay_ms / 1000.0)
            elif spec.kind == "io-error":
                raise InjectedIOError(site)
            elif spec.kind == "crash":
                raise InjectedWorkerCrash(site)
            else:  # torn-write: keep a strict prefix
                data = data[: self._rngs[index].randint(0, len(data) - 1)]
        return data

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-ready injection accounting (the manifest chaos section)."""
        return {
            "seed": self.seed,
            "specs": len(self.plan),
            "checks": self.checks,
            "total_injected": sum(self.injected.values()),
            "injected": dict(sorted(self.injected.items())),
        }

    def _publish_injected(self, site: str, kind: str, count: int) -> None:
        from ..telemetry import FaultInjectedEvent, TelemetryBus

        if self._bus is None:
            self._bus = TelemetryBus()
        self._bus.publish(
            FaultInjectedEvent(time=0.0, site=site, kind=kind, count=count)
        )


# ----------------------------------------------------------------------
# the module-global plane
# ----------------------------------------------------------------------
_PLANE: Optional[FaultPlane] = None
_ENV_CHECKED = False


def active_plane() -> Optional[FaultPlane]:
    """The armed plane, rebuilding from the environment in fresh workers."""
    global _PLANE, _ENV_CHECKED
    plane = _PLANE
    if plane is not None or _ENV_CHECKED:
        return plane
    _ENV_CHECKED = True
    text = os.environ.get(PLAN_ENV_VAR)
    if not text:
        return None
    from .plan import FaultPlanError

    try:
        plan = FaultPlan.from_json(text)
        seed = int(os.environ.get(SEED_ENV_VAR, "0"))
    except (FaultPlanError, ValueError):
        return None
    _PLANE = FaultPlane(plan, seed)
    return _PLANE


def is_active() -> bool:
    """Whether a fault plane is currently armed in this process."""
    return active_plane() is not None


def fault_point(site: str) -> None:
    """Control-point injection: no-op unless a plane is armed."""
    plane = _PLANE
    if plane is None:
        if _ENV_CHECKED:
            return
        plane = active_plane()
        if plane is None:
            return
    plane.check(site)


def filter_read(site: str, data: bytes) -> bytes:
    """Read-path injection: identity unless a plane is armed."""
    plane = _PLANE
    if plane is None:
        if _ENV_CHECKED:
            return data
        plane = active_plane()
        if plane is None:
            return data
    return plane.filter_read(site, data)


def filter_write(site: str, data: bytes, durable: bool = False) -> bytes:
    """Write-path injection: identity unless a plane is armed."""
    plane = _PLANE
    if plane is None:
        if _ENV_CHECKED:
            return data
        plane = active_plane()
        if plane is None:
            return data
    return plane.filter_write(site, data, durable=durable)


@contextmanager
def activate(plan: FaultPlan, seed: int) -> Iterator[FaultPlane]:
    """Arm a fault plane process-wide (and via env for pool workers)."""
    global _PLANE, _ENV_CHECKED
    prev_plane, prev_checked = _PLANE, _ENV_CHECKED
    prev_env = {key: os.environ.get(key) for key in (PLAN_ENV_VAR, SEED_ENV_VAR)}
    plane = FaultPlane(plan, seed)
    _PLANE, _ENV_CHECKED = plane, True
    os.environ[PLAN_ENV_VAR] = plan.to_json(indent=None)
    os.environ[SEED_ENV_VAR] = str(int(seed))
    try:
        yield plane
    finally:
        _PLANE, _ENV_CHECKED = prev_plane, prev_checked
        for key, value in prev_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

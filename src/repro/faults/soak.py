"""The chaos soak: serve a corpus under faults, prove nothing is lost.

One soak run answers the acceptance question of the chaos harness in a
single deterministic pass:

1. a *reference* :class:`~repro.serve.service.ProfilingService` ingests
   the corpus fault-free and answers every (session × backend) query;
2. a *chaos* service — spilling sessions through its own store, with
   lenient ingest — repeats the exact same work under an armed
   :class:`~repro.faults.FaultPlan`;
3. the two are reconciled item by item: every corpus source must end as
   a session or a recorded :class:`~repro.serve.ingest.IngestError`,
   every query must come back exactly once, every ``ok`` answer must be
   **byte-identical** to the fault-free answer, and every non-``ok``
   answer must carry a typed, non-empty error.  Anything else is a
   *silent drop* and fails the soak.

``repro check --chaos`` and ``tests/test_faults_chaos.py`` both drive
this; :func:`replay_chaos_entry` replays one checked-in chaos corpus
document (its recorded seed + fault plan) the same way.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .plan import FaultPlan
from .plane import activate

PathLike = Union[str, Path]

#: Backends each session is queried under during a soak (a spread of
#: the cheap baseline, the superimposing profiler, and the breakdown).
SOAK_BACKENDS = ("energy", "eandroid", "collateral")

#: Suffixes the serving path ingests (mirrors repro.serve.ingest).
_SOURCE_SUFFIXES = (".json", ".jsonl", ".bin", ".rtb")


def canonical_report_bytes(payload: Dict[str, Any]) -> bytes:
    """The byte-identity form of one report payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass
class SoakResult:
    """Everything one soak run established."""

    seed: int
    plan: Dict[str, Any]
    sources: int
    reference_sessions: int
    chaos_sessions: int
    ingest_errors: int
    queries: int
    ok: int
    ok_identical: int
    typed_errors: int
    injected: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no silent drop or divergence was found."""
        return not self.problems

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the manifest chaos section)."""
        return {
            "seed": self.seed,
            "plan": self.plan,
            "sources": self.sources,
            "reference_sessions": self.reference_sessions,
            "chaos_sessions": self.chaos_sessions,
            "ingest_errors": self.ingest_errors,
            "queries": self.queries,
            "ok": self.ok,
            "ok_identical": self.ok_identical,
            "typed_errors": self.typed_errors,
            "injected": dict(self.injected),
            "problems": list(self.problems),
            "passed": self.passed,
        }


def _count_sources(corpus_dir: Path) -> int:
    if corpus_dir.is_file():
        return 1
    return sum(
        1
        for child in corpus_dir.iterdir()
        if child.is_file() and child.suffix in _SOURCE_SUFFIXES
    )


def run_soak(
    corpus_dir: PathLike,
    seed: int,
    plan: Optional[FaultPlan] = None,
    backends: Sequence[str] = SOAK_BACKENDS,
) -> SoakResult:
    """One full reference-vs-chaos pass over ``corpus_dir``."""
    from ..reports.request import ReportRequest
    from ..serve.protocol import STATUS_OK
    from ..serve.service import ProfilingService, ServiceConfig

    plan = plan if plan is not None else FaultPlan.mixed(0.05)
    corpus = Path(corpus_dir)
    sources = _count_sources(corpus)
    problems: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        # --- fault-free reference -------------------------------------
        reference = ProfilingService(
            ServiceConfig(telemetry=False, store_dir=str(Path(tmp) / "ref"))
        )
        ref_names = reference.ingest(corpus)
        queries = [
            # Session names sort so query ids are stable run to run.
            (index, session, backend)
            for index, (session, backend) in enumerate(
                (s, b) for s in sorted(ref_names) for b in backends
            )
        ]
        expected: Dict[int, bytes] = {}
        from ..serve.protocol import QueryRequest

        requests = [
            QueryRequest(id=qid, session=session, report=ReportRequest(backend=backend))
            for qid, session, backend in queries
        ]
        for request in requests:
            response = reference.submit(request)
            if response.status != STATUS_OK or response.report is None:
                problems.append(
                    f"reference query {request.id} ({request.session}/"
                    f"{request.report.backend}) failed fault-free: {response.error}"
                )
            else:
                expected[request.id] = canonical_report_bytes(response.report)

        # --- the same work under faults -------------------------------
        chaos = ProfilingService(
            ServiceConfig(
                telemetry=False,
                store_dir=str(Path(tmp) / "chaos"),
                spill=True,
            )
        )
        with activate(plan, seed) as plane:
            chaos_names = chaos.ingest(corpus, strict=False)
            responses = [chaos.submit(request) for request in requests]
            injected = dict(plane.summary()["injected"])

        # --- reconciliation: nothing silently dropped ------------------
        if len(chaos_names) + len(chaos.ingest_errors) != sources:
            problems.append(
                f"ingest accounting broken: {sources} source(s) but "
                f"{len(chaos_names)} session(s) + "
                f"{len(chaos.ingest_errors)} error record(s)"
            )
        if len(responses) != len(requests):
            problems.append(
                f"{len(requests)} queries submitted, {len(responses)} answered"
            )
        ok = ok_identical = typed_errors = 0
        for request, response in zip(requests, responses):
            label = f"query {request.id} ({request.session}/{request.report.backend})"
            if response.id != request.id:
                problems.append(f"{label} answered with id {response.id}")
            if response.status == STATUS_OK:
                ok += 1
                if response.report is None:
                    problems.append(f"{label} ok without a report payload")
                elif canonical_report_bytes(response.report) != expected.get(
                    request.id
                ):
                    problems.append(f"{label} diverged from the fault-free report")
                else:
                    ok_identical += 1
            elif response.error:
                typed_errors += 1
            else:
                problems.append(
                    f"{label} degraded without a typed error "
                    f"(status {response.status!r})"
                )
        received = chaos.stats.received
        settled = chaos.stats.answered + chaos.stats.errors + chaos.stats.shed
        if received != settled:
            problems.append(
                f"service accounting broken: received {received} != "
                f"answered+errors+shed {settled}"
            )

    return SoakResult(
        seed=int(seed),
        plan=plan.to_dict(),
        sources=sources,
        reference_sessions=len(ref_names),
        chaos_sessions=len(chaos_names),
        ingest_errors=len(chaos.ingest_errors),
        queries=len(requests),
        ok=ok,
        ok_identical=ok_identical,
        typed_errors=typed_errors,
        injected=injected,
        problems=problems,
    )


def replay_chaos_entry(path: PathLike) -> SoakResult:
    """Replay one chaos corpus document under its recorded plan + seed.

    The document is a normal shrunk-scenario corpus entry carrying a
    ``chaos`` section (``{"seed": N, "fault_plan": {...}}``, written by
    ``repro check --chaos``); the scenario is served reference-vs-chaos
    exactly like a full soak, so the finding replays bit-for-bit.
    """
    from ..check.campaign import load_corpus_entry

    entry_path = Path(path)
    document = load_corpus_entry(entry_path)
    chaos = document.get("chaos")
    if not isinstance(chaos, dict):
        raise ValueError(f"{entry_path}: corpus entry has no chaos section")
    plan = FaultPlan.from_dict(chaos["fault_plan"])
    seed = int(chaos["seed"])
    with tempfile.TemporaryDirectory(prefix="repro-chaos-entry-") as tmp:
        staged = Path(tmp) / entry_path.name
        staged.write_bytes(entry_path.read_bytes())
        return run_soak(staged, seed, plan)

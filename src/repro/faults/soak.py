"""The chaos soak: serve a corpus under faults, prove nothing is lost.

One soak run answers the acceptance question of the chaos harness in a
single deterministic pass:

1. a *reference* :class:`~repro.serve.service.ProfilingService` ingests
   the corpus fault-free and answers every (session × backend) query;
2. a *chaos* service — spilling sessions through its own store, with
   lenient ingest — repeats the exact same work under an armed
   :class:`~repro.faults.FaultPlan`;
3. the two are reconciled item by item: every corpus source must end as
   a session or a recorded :class:`~repro.serve.ingest.IngestError`,
   every query must come back exactly once, every ``ok`` answer must be
   **byte-identical** to the fault-free answer, and every non-``ok``
   answer must carry a typed, non-empty error.  Anything else is a
   *silent drop* and fails the soak.

``repro check --chaos`` and ``tests/test_faults_chaos.py`` both drive
this; :func:`replay_chaos_entry` replays one checked-in chaos corpus
document (its recorded seed + fault plan) the same way.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .plan import FaultPlan
from .plane import activate

PathLike = Union[str, Path]

#: Backends each session is queried under during a soak (a spread of
#: the cheap baseline, the superimposing profiler, and the breakdown).
SOAK_BACKENDS = ("energy", "eandroid", "collateral")

#: Suffixes the serving path ingests (mirrors repro.serve.ingest).
_SOURCE_SUFFIXES = (".json", ".jsonl", ".bin", ".rtb")


def canonical_report_bytes(payload: Dict[str, Any]) -> bytes:
    """The byte-identity form of one report payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass
class SoakResult:
    """Everything one soak run established."""

    seed: int
    plan: Dict[str, Any]
    sources: int
    reference_sessions: int
    chaos_sessions: int
    ingest_errors: int
    queries: int
    ok: int
    ok_identical: int
    typed_errors: int
    injected: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no silent drop or divergence was found."""
        return not self.problems

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the manifest chaos section)."""
        return {
            "seed": self.seed,
            "plan": self.plan,
            "sources": self.sources,
            "reference_sessions": self.reference_sessions,
            "chaos_sessions": self.chaos_sessions,
            "ingest_errors": self.ingest_errors,
            "queries": self.queries,
            "ok": self.ok,
            "ok_identical": self.ok_identical,
            "typed_errors": self.typed_errors,
            "injected": dict(self.injected),
            "problems": list(self.problems),
            "passed": self.passed,
        }


def _count_sources(corpus_dir: Path) -> int:
    if corpus_dir.is_file():
        return 1
    return sum(
        1
        for child in corpus_dir.iterdir()
        if child.is_file() and child.suffix in _SOURCE_SUFFIXES
    )


def _reference_answers(corpus: Path, backends: Sequence[str], tmp: Path, problems):
    """Fault-free pass: (requests, expected-bytes-by-id, session names)."""
    from ..reports.request import ReportRequest
    from ..serve.protocol import STATUS_OK, QueryRequest
    from ..serve.service import ProfilingService, ServiceConfig

    reference = ProfilingService(
        ServiceConfig(telemetry=False, store_dir=str(tmp / "ref"))
    )
    ref_names = reference.ingest(corpus)
    requests = [
        # Session names sort so query ids are stable run to run; ids
        # start at 1 because the TCP front-end's connection-refusal
        # lines carry id 0 and must never match a real query.
        QueryRequest(id=qid, session=session, report=ReportRequest(backend=backend))
        for qid, (session, backend) in enumerate(
            ((s, b) for s in sorted(ref_names) for b in backends), start=1
        )
    ]
    expected: Dict[int, bytes] = {}
    for request in requests:
        response = reference.submit(request)
        if response.status != STATUS_OK or response.report is None:
            problems.append(
                f"reference query {request.id} ({request.session}/"
                f"{request.report.backend}) failed fault-free: {response.error}"
            )
        else:
            expected[request.id] = canonical_report_bytes(response.report)
    return requests, expected, ref_names


def _reconcile_responses(requests, responses, expected, problems):
    """Item-by-item reconciliation; returns (ok, ok_identical, typed_errors).

    The invariants (same for every transport): every query answered
    exactly once, ``ok`` answers byte-identical to the fault-free run,
    non-``ok`` answers carrying a typed, non-empty error.
    """
    from ..serve.protocol import STATUS_OK

    if len(responses) != len(requests):
        problems.append(
            f"{len(requests)} queries submitted, {len(responses)} answered"
        )
    ok = ok_identical = typed_errors = 0
    for request, response in zip(requests, responses):
        label = f"query {request.id} ({request.session}/{request.report.backend})"
        if response.id != request.id:
            problems.append(f"{label} answered with id {response.id}")
        if response.status == STATUS_OK:
            ok += 1
            if response.report is None:
                problems.append(f"{label} ok without a report payload")
            elif canonical_report_bytes(response.report) != expected.get(request.id):
                problems.append(f"{label} diverged from the fault-free report")
            else:
                ok_identical += 1
        elif response.error:
            typed_errors += 1
        else:
            problems.append(
                f"{label} degraded without a typed error "
                f"(status {response.status!r})"
            )
    return ok, ok_identical, typed_errors


def run_soak(
    corpus_dir: PathLike,
    seed: int,
    plan: Optional[FaultPlan] = None,
    backends: Sequence[str] = SOAK_BACKENDS,
) -> SoakResult:
    """One full reference-vs-chaos pass over ``corpus_dir``."""
    from ..serve.service import ProfilingService, ServiceConfig

    plan = plan if plan is not None else FaultPlan.mixed(0.05)
    corpus = Path(corpus_dir)
    sources = _count_sources(corpus)
    problems: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        requests, expected, ref_names = _reference_answers(
            corpus, backends, Path(tmp), problems
        )

        # --- the same work under faults -------------------------------
        chaos = ProfilingService(
            ServiceConfig(
                telemetry=False,
                store_dir=str(Path(tmp) / "chaos"),
                spill=True,
            )
        )
        with activate(plan, seed) as plane:
            chaos_names = chaos.ingest(corpus, strict=False)
            responses = [chaos.submit(request) for request in requests]
            injected = dict(plane.summary()["injected"])

        # --- reconciliation: nothing silently dropped ------------------
        if len(chaos_names) + len(chaos.ingest_errors) != sources:
            problems.append(
                f"ingest accounting broken: {sources} source(s) but "
                f"{len(chaos_names)} session(s) + "
                f"{len(chaos.ingest_errors)} error record(s)"
            )
        ok, ok_identical, typed_errors = _reconcile_responses(
            requests, responses, expected, problems
        )
        received = chaos.stats.received
        settled = chaos.stats.answered + chaos.stats.errors + chaos.stats.shed
        if received != settled:
            problems.append(
                f"service accounting broken: received {received} != "
                f"answered+errors+shed {settled}"
            )

    return SoakResult(
        seed=int(seed),
        plan=plan.to_dict(),
        sources=sources,
        reference_sessions=len(ref_names),
        chaos_sessions=len(chaos_names),
        ingest_errors=len(chaos.ingest_errors),
        queries=len(requests),
        ok=ok,
        ok_identical=ok_identical,
        typed_errors=typed_errors,
        injected=injected,
        problems=problems,
    )


def run_net_soak(
    corpus_dir: PathLike,
    seed: int,
    plan: Optional[FaultPlan] = None,
    backends: Sequence[str] = SOAK_BACKENDS,
    deadline_s: float = 0.25,
) -> SoakResult:
    """A soak pass where the chaos phase is served **over TCP**.

    Same contract as :func:`run_soak`, but the chaos service sits behind
    a :class:`~repro.serve.net.NetServer` with ``net.*`` fault sites
    armed, and queries travel through an
    :class:`~repro.serve.net.AsyncServiceClient`.  Injected transport
    latency beyond ``deadline_s`` must surface as a typed deadline
    ``error`` naming the query; injected accept/read/write failures must
    kill at most the one connection (the client reconnects and resubmits)
    — a query that never comes back is recorded as a client-side typed
    error, never silently dropped.  Ingest happens before the plane is
    armed: this soak targets the transport, not the ingest path.
    """
    import asyncio

    from ..serve.service import ProfilingService, ServiceConfig

    if plan is None:
        from .plan import FaultSpec

        # Default: enough injected latency to trip the deadline twice.
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    site="net.latency",
                    kind="latency",
                    probability=1.0,
                    max_injections=2,
                    delay_ms=max(100.0, 6000.0 * deadline_s),
                )
            ]
        )
    corpus = Path(corpus_dir)
    sources = _count_sources(corpus)
    problems: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-chaos-net-") as tmp:
        requests, expected, ref_names = _reference_answers(
            corpus, backends, Path(tmp), problems
        )

        chaos = ProfilingService(ServiceConfig(telemetry=False))
        chaos_names = chaos.ingest(corpus)
        with activate(plan, seed) as plane:
            responses, net_stats = asyncio.run(
                _serve_over_net(chaos, requests, deadline_s)
            )
            injected = dict(plane.summary()["injected"])

        ok, ok_identical, typed_errors = _reconcile_responses(
            requests, responses, expected, problems
        )
        received = net_stats["received"]
        settled = (
            net_stats["answered"] + net_stats["errors"] + net_stats["shed"]
        )
        if received != settled:
            problems.append(
                f"net accounting broken: received {received} != "
                f"answered+errors+shed {settled}"
            )

    return SoakResult(
        seed=int(seed),
        plan=plan.to_dict(),
        sources=sources,
        reference_sessions=len(ref_names),
        chaos_sessions=len(chaos_names),
        ingest_errors=len(chaos.ingest_errors),
        queries=len(requests),
        ok=ok,
        ok_identical=ok_identical,
        typed_errors=typed_errors,
        injected=injected,
        problems=problems,
    )


async def _serve_over_net(service, requests, deadline_s: float, attempts: int = 4):
    """Drive ``requests`` sequentially through a chaos-armed NetServer.

    Sequential on purpose: with one query in flight at a time, fault
    injections land in a deterministic order for a given (plan, seed),
    which is what lets a checked-in chaos corpus entry replay its
    net-latency → deadline finding bit-for-bit.
    """
    import asyncio

    from ..serve.net import AsyncServiceClient, NetConfig, NetServer
    from ..serve.protocol import STATUS_ERROR, QueryResponse

    server = NetServer(
        service, NetConfig(deadline_s=deadline_s, pool_workers=2)
    )
    await server.start()
    host, port = server.address
    client: Optional[AsyncServiceClient] = None
    responses: List[QueryResponse] = []
    # Generous wall-clock cap per attempt: the server answers deadline
    # misses in ~deadline_s, so only a torn/killed connection trips this.
    attempt_timeout = max(5.0, 8 * deadline_s)
    try:
        for request in requests:
            response: Optional[QueryResponse] = None
            for _ in range(attempts):
                if client is None:
                    try:
                        client = AsyncServiceClient(host, port)
                        await client.connect()
                    except (ConnectionError, OSError):
                        client = None
                        await asyncio.sleep(0.01)
                        continue
                try:
                    response = await asyncio.wait_for(
                        client.submit(request), timeout=attempt_timeout
                    )
                    break
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    # The fault plane killed this connection: hang up
                    # and resubmit on a fresh one.
                    try:
                        await client.close()
                    except Exception:
                        pass
                    client = None
            if response is None:
                responses.append(
                    QueryResponse(
                        id=request.id,
                        session=request.session,
                        status=STATUS_ERROR,
                        error=(
                            f"query {request.id} on session "
                            f"{request.session!r} lost to transport faults "
                            f"after {attempts} attempt(s)"
                        ),
                    )
                )
            else:
                responses.append(response)
        net_stats = server.stats.as_dict()
    finally:
        if client is not None:
            await client.close()
        await server.shutdown()
    return responses, net_stats


def replay_chaos_entry(path: PathLike) -> SoakResult:
    """Replay one chaos corpus document under its recorded plan + seed.

    The document is a normal shrunk-scenario corpus entry carrying a
    ``chaos`` section (``{"seed": N, "fault_plan": {...}}``, written by
    ``repro check --chaos``); the scenario is served reference-vs-chaos
    exactly like a full soak, so the finding replays bit-for-bit.  An
    entry whose plan targets ``net.*`` sites replays through
    :func:`run_net_soak` — over a real TCP server — for the same reason.
    """
    from ..check.campaign import load_corpus_entry

    entry_path = Path(path)
    document = load_corpus_entry(entry_path)
    chaos = document.get("chaos")
    if not isinstance(chaos, dict):
        raise ValueError(f"{entry_path}: corpus entry has no chaos section")
    plan = FaultPlan.from_dict(chaos["fault_plan"])
    seed = int(chaos["seed"])
    with tempfile.TemporaryDirectory(prefix="repro-chaos-entry-") as tmp:
        staged = Path(tmp) / entry_path.name
        staged.write_bytes(entry_path.read_bytes())
        if any(spec.site.startswith("net.") for spec in plan.specs):
            return run_net_soak(staged, seed, plan)
        return run_soak(staged, seed, plan)

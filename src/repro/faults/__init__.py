"""repro.faults — deterministic chaos for the store/exec/serve stack.

The fault plane answers one question everywhere the system touches a
disk, a worker, or a query: *should this operation misbehave right
now?* — deterministically, from a seed, so every chaos finding replays
bit-for-bit.  See ``docs/TESTING.md`` ("Chaos testing") for the site ×
fault degradation matrix, and :mod:`repro.faults.soak` for the
corpus-wide soak harness behind ``repro check --chaos``.
"""

from .plan import (
    FAULT_KINDS,
    KNOWN_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from .plane import (
    PLAN_ENV_VAR,
    SEED_ENV_VAR,
    FaultPlane,
    InjectedIOError,
    InjectedWorkerCrash,
    activate,
    active_plane,
    fault_point,
    filter_read,
    filter_write,
    is_active,
)
from .retry import (
    DEFAULT_RETRY_POLICY,
    RetriesExhaustedError,
    RetryPolicy,
    retry_rng,
    run_with_retry,
)
from .soak import (
    SOAK_BACKENDS,
    SoakResult,
    replay_chaos_entry,
    run_net_soak,
    run_soak,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultPlane",
    "FaultSpec",
    "InjectedIOError",
    "InjectedWorkerCrash",
    "KNOWN_SITES",
    "PLAN_ENV_VAR",
    "RetriesExhaustedError",
    "RetryPolicy",
    "SEED_ENV_VAR",
    "SOAK_BACKENDS",
    "SoakResult",
    "activate",
    "active_plane",
    "fault_point",
    "filter_read",
    "filter_write",
    "is_active",
    "replay_chaos_entry",
    "retry_rng",
    "run_net_soak",
    "run_soak",
    "run_with_retry",
]

"""The shared retry policy: bounded exponential backoff with jitter.

Transient failures — an injected io-error, a flaky disk, a briefly
broken pool — are retried under one :class:`RetryPolicy` shape
everywhere (ResultCache store reads, serve shard dispatch, spilled-
session restore) so the robustness behaviour is analysable in one
place:

* the *backoff schedule* is pure and monotone non-decreasing —
  ``base_delay_s * multiplier**attempt`` capped at ``max_delay_s``;
* *jitter* multiplies each delay by ``1 + jitter * u`` with ``u``
  drawn uniformly from ``[0, 1]`` off a :class:`~repro.sim.rng.
  SeededRng`, so the jittered delay stays within
  ``[backoff, backoff * (1 + jitter)]`` and is deterministic under a
  fixed seed;
* the total time slept never exceeds ``budget_s`` (the per-site
  timeout budget) — the final delay is truncated to the remaining
  budget, and an exhausted budget stops retrying early;
* exhaustion raises a typed :class:`RetriesExhaustedError` carrying
  the site, the attempt count, and the last underlying error — the
  signal callers turn into a graceful degradation (cache miss, typed
  error response) instead of an anonymous crash.

Each retry publishes a :class:`~repro.telemetry.RetryAttemptEvent`
(first-attempt successes publish nothing, keeping the happy path
silent and cheap).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

from ..sim.rng import SeededRng, derive_seed

T = TypeVar("T")

_bus = None  # module-level lazy bus so capture() can hook it


class RetriesExhaustedError(RuntimeError):
    """Every allowed attempt at a site failed (or the budget ran out)."""

    def __init__(
        self,
        site: str,
        attempts: int,
        slept_s: float,
        last_error: Optional[BaseException],
    ) -> None:
        super().__init__(
            f"retries exhausted at {site} after {attempts} attempt(s) "
            f"({slept_s:.3f}s backoff): {last_error!r}"
        )
        self.site = site
        self.attempts = attempts
        self.slept_s = slept_s
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """One site's retry shape; every field is validated at construction."""

    attempts: int = 3  # total tries, including the first
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.1
    jitter: float = 0.5  # max extra fraction of each backoff delay
    budget_s: float = 1.0  # total sleep allowed across all retries

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts {self.attempts!r} must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s {self.base_delay_s!r} must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier {self.multiplier!r} must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s {self.max_delay_s!r} must be >= 0")
        if self.jitter < 0:
            raise ValueError(f"jitter {self.jitter!r} must be >= 0")
        if self.budget_s < 0:
            raise ValueError(f"budget_s {self.budget_s!r} must be >= 0")

    def backoff(self, attempt: int) -> float:
        """The pure (un-jittered) delay after failed attempt ``attempt``.

        Monotone non-decreasing in ``attempt`` and capped at
        ``max_delay_s`` — the properties the hypothesis suite pins.
        """
        if attempt < 0:
            raise ValueError(f"attempt {attempt!r} must be >= 0")
        return min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)

    def schedule(self) -> Tuple[float, ...]:
        """The full un-jittered backoff schedule (one delay per retry)."""
        return tuple(self.backoff(i) for i in range(self.attempts - 1))

    def delay_for(self, attempt: int, rng: SeededRng) -> float:
        """The jittered delay after failed attempt ``attempt``.

        Always within ``[backoff, backoff * (1 + jitter)]``.
        """
        return self.backoff(attempt) * (1.0 + self.jitter * rng.uniform(0.0, 1.0))


#: The shape shared by every adopted call site.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_rng(site: str, seed: Optional[int] = None) -> SeededRng:
    """The jitter stream for one site (plane seed by default).

    With an armed fault plane the stream forks from the plane's seed,
    so a chaos run's jitter replays with the run; otherwise seed 0
    keeps un-seeded callers deterministic too.
    """
    if seed is None:
        from .plane import active_plane

        plane = active_plane()
        seed = plane.seed if plane is not None else 0
    return SeededRng(derive_seed(seed, f"retry:{site}"))


def run_with_retry(
    fn: Callable[[], T],
    site: str,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    rng: Optional[SeededRng] = None,
    sleep: Callable[[float], Any] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``, retrying ``retry_on`` failures.

    The first attempt costs one ``try`` — no rng, no events.  ``rng``
    and ``sleep`` are injectable so the property tests can observe the
    exact delays without wall-clock sleeping.
    """
    last: Optional[BaseException] = None
    slept = 0.0
    attempt = 0
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == policy.attempts - 1:
                break
            remaining = policy.budget_s - slept
            if remaining <= 0.0:
                break
            if rng is None:
                rng = retry_rng(site)
            delay = min(policy.delay_for(attempt, rng), remaining)
            _publish_retry(site, attempt + 1, delay, exc)
            sleep(delay)
            slept += delay
    raise RetriesExhaustedError(site, attempt + 1, slept, last) from last


def _publish_retry(site: str, attempt: int, delay_s: float, error: BaseException) -> None:
    from ..telemetry import RetryAttemptEvent, TelemetryBus

    global _bus
    if _bus is None:
        _bus = TelemetryBus()
    _bus.publish(
        RetryAttemptEvent(
            time=0.0,
            site=site,
            attempt=attempt,
            delay_s=delay_s,
            error=repr(error),
        )
    )

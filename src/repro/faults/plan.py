"""Typed fault plans — what to break, where, and how often.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
naming an injection *site pattern* (``fnmatch`` glob over the site
labels threaded through store/exec/serve — ``store.read``,
``exec.dispatch``, ``serve.*`` …), a fault *kind*, and a probability.
Plans are plain JSON documents so a failing chaos finding can be
checked into the corpus and replayed bit-for-bit:

.. code-block:: json

    {
      "schema": 1,
      "kind": "repro-fault-plan",
      "specs": [
        {"site": "store.read", "kind": "corrupt", "probability": 0.05},
        {"site": "exec.dispatch", "kind": "crash", "probability": 0.05}
      ]
    }

Fault kinds (the columns of the degradation matrix in
``docs/TESTING.md``):

========== ==========================================================
kind        effect at the site
========== ==========================================================
io-error    raise :class:`~repro.faults.plane.InjectedIOError`
            (an ``OSError``) — transient by construction, so retry
            policies can recover
torn-write  truncate the bytes of a *non-durable* write at a random
            offset (a durable/fsync'd write cannot tear)
latency     sleep ``delay_ms`` host-milliseconds (± jitter)
crash       raise :class:`~repro.faults.plane.InjectedWorkerCrash`
            — models a worker process dying mid-job
corrupt     flip one byte of the data flowing through a read site
========== ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

PLAN_SCHEMA = 1
PLAN_KIND = "repro-fault-plan"

#: The recognised fault kinds, in degradation-matrix order.
FAULT_KINDS = ("io-error", "torn-write", "latency", "crash", "corrupt")

#: The canonical injection-site labels threaded through the codebase.
#: Plans may target any subset (or glob patterns over them).
KNOWN_SITES = (
    "store.read",       # ArtifactStore.get_bytes
    "store.write",      # ArtifactStore._atomic_write (blob/manifest/ref)
    "store.fsync",      # the durable-write fsync path
    "exec.spawn",       # ProcessPoolExecutor creation
    "exec.dispatch",    # worker entry (_execute_job)
    "exec.result",      # result return to the parent
    "serve.parse",      # trace/corpus document parse during ingest
    "serve.spill",      # SessionRecord.spill to the store
    "serve.restore",    # spilled-session fault-in on first query
    "serve.dispatch",   # shard fan-out through the exec engine
    "serve.query",      # in-process query answer path
    "aggregate.dispatch",  # per-session partial compute / shard fan-out
    "aggregate.merge",     # gather-step partial merge
    "net.accept",       # TCP front-end connection admission
    "net.read",         # socket read path (request bytes)
    "net.write",        # socket write path (response lines)
    "net.latency",      # query dispatch delay (drives the deadline path)
)


class FaultPlanError(ValueError):
    """A fault plan document is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: a site pattern, a kind, and a firing probability."""

    site: str
    kind: str
    probability: float
    max_injections: Optional[int] = None
    delay_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability {self.probability!r} outside [0, 1]"
            )
        if self.max_injections is not None and self.max_injections < 0:
            raise FaultPlanError(
                f"max_injections {self.max_injections!r} must be >= 0"
            )
        if self.delay_ms < 0:
            raise FaultPlanError(f"delay_ms {self.delay_ms!r} must be >= 0")
        if not self.site:
            raise FaultPlanError("site pattern must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        out: Dict[str, Any] = {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
        }
        if self.max_injections is not None:
            out["max_injections"] = self.max_injections
        if self.kind == "latency":
            out["delay_ms"] = self.delay_ms
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Rebuild from :meth:`to_dict` data (validating as it goes)."""
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be a JSON object, got {data!r}")
        try:
            return cls(
                site=str(data["site"]),
                kind=str(data["kind"]),
                probability=float(data["probability"]),
                max_injections=(
                    None
                    if data.get("max_injections") is None
                    else int(data["max_injections"])
                ),
                delay_ms=float(data.get("delay_ms", 2.0)),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault spec missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            if isinstance(exc, FaultPlanError):
                raise
            raise FaultPlanError(f"malformed fault spec: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An ordered list of fault specs (order is part of determinism)."""

    specs: Sequence[FaultSpec] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON plan document."""
        return {
            "schema": PLAN_SCHEMA,
            "kind": PLAN_KIND,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The plan as canonical JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Parse and validate one plan document."""
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        if data.get("kind") != PLAN_KIND:
            raise FaultPlanError(
                f"document is not a {PLAN_KIND!r} (kind={data.get('kind')!r})"
            )
        if data.get("schema") != PLAN_SCHEMA:
            raise FaultPlanError(
                f"unsupported plan schema {data.get('schema')!r} "
                f"(expected {PLAN_SCHEMA})"
            )
        specs = data.get("specs")
        if not isinstance(specs, list):
            raise FaultPlanError("plan 'specs' must be a JSON array")
        return cls(specs=[FaultSpec.from_dict(spec) for spec in specs])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_json(text)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan as a JSON document."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def mixed(cls, rate: float = 0.05, delay_ms: float = 2.0) -> "FaultPlan":
        """The standard mixed plan: every fault kind at one rate.

        This is what ``repro check --chaos`` and the soak test use —
        io-errors and byte corruption on store reads, torn and failing
        store writes, worker crashes and latency spikes in the engine,
        and parse/dispatch/query failures in the serving path.
        """
        specs: List[FaultSpec] = [
            FaultSpec(site="store.read", kind="io-error", probability=rate),
            FaultSpec(site="store.read", kind="corrupt", probability=rate),
            FaultSpec(site="store.write", kind="torn-write", probability=rate),
            FaultSpec(site="store.write", kind="io-error", probability=rate),
            FaultSpec(
                site="exec.dispatch",
                kind="latency",
                probability=rate,
                delay_ms=delay_ms,
            ),
            FaultSpec(site="exec.dispatch", kind="crash", probability=rate),
            FaultSpec(site="exec.result", kind="crash", probability=rate),
            FaultSpec(site="serve.parse", kind="io-error", probability=rate),
            FaultSpec(site="serve.spill", kind="io-error", probability=rate),
            FaultSpec(site="serve.restore", kind="io-error", probability=rate),
            FaultSpec(site="serve.dispatch", kind="io-error", probability=rate),
            FaultSpec(site="serve.query", kind="io-error", probability=rate),
            # Appended (not inserted) so the earlier specs keep their rng
            # streams and existing chaos runs stay bit-reproducible.
            FaultSpec(site="aggregate.dispatch", kind="io-error", probability=rate),
            FaultSpec(site="aggregate.merge", kind="io-error", probability=rate),
        ]
        return cls(specs=specs)

"""Intents — the currency of Android IPC.

An :class:`Intent` either names its target component explicitly
(``component=("com.example.app", "MainActivity")``) or declares a general
``action`` to be resolved against installed apps' intent filters, in
which case the system shows the resolver UI for the user to pick a
handler.  The paper's IPC-based attack vector (§III-A) rides exactly
this mechanism: any app can send an intent that makes *another* app do
energy-expensive work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

# Well-known actions used by the demo apps and malware.
ACTION_MAIN = "android.intent.action.MAIN"
ACTION_VIEW = "android.intent.action.VIEW"
ACTION_SEND = "android.intent.action.SEND"
ACTION_VIDEO_CAPTURE = "android.media.action.VIDEO_CAPTURE"
ACTION_IMAGE_CAPTURE = "android.media.action.IMAGE_CAPTURE"
ACTION_USER_PRESENT = "android.intent.action.USER_PRESENT"
ACTION_SCREEN_ON = "android.intent.action.SCREEN_ON"
ACTION_SCREEN_OFF = "android.intent.action.SCREEN_OFF"
ACTION_BOOT_COMPLETED = "android.intent.action.BOOT_COMPLETED"

CATEGORY_LAUNCHER = "android.intent.category.LAUNCHER"
CATEGORY_DEFAULT = "android.intent.category.DEFAULT"
CATEGORY_HOME = "android.intent.category.HOME"

# Flag mirroring Intent.FLAG_ACTIVITY_EXCLUDE_FROM_RECENTS — used by the
# paper's malware to hide from the recent-apps list (§V).
FLAG_EXCLUDE_FROM_RECENTS = 1 << 0
FLAG_ACTIVITY_NEW_TASK = 1 << 1


@dataclass(frozen=True)
class ComponentName:
    """Fully-qualified component reference: (package, class name)."""

    package: str
    class_name: str

    def flatten(self) -> str:
        """The ``pkg/Class`` shorthand used by ``am`` tooling."""
        return f"{self.package}/{self.class_name}"

    @staticmethod
    def parse(flat: str) -> "ComponentName":
        """Inverse of :meth:`flatten`."""
        package, _, class_name = flat.partition("/")
        if not package or not class_name:
            raise ValueError(f"malformed component name {flat!r}")
        return ComponentName(package, class_name)


@dataclass
class Intent:
    """A request for another component to perform an action."""

    action: Optional[str] = None
    component: Optional[ComponentName] = None
    categories: FrozenSet[str] = frozenset()
    extras: Dict[str, Any] = field(default_factory=dict)
    flags: int = 0

    @property
    def is_explicit(self) -> bool:
        """Explicit intents name their target component directly."""
        return self.component is not None

    def with_component(self, component: ComponentName) -> "Intent":
        """A copy of this intent pinned to a resolved component.

        Resolution of an implicit intent dispatches a *new explicit*
        intent (as the paper notes for the resolver flow), so this
        returns a fresh object rather than mutating.
        """
        return Intent(
            action=self.action,
            component=component,
            categories=self.categories,
            extras=dict(self.extras),
            flags=self.flags,
        )

    def has_flag(self, flag: int) -> bool:
        """Whether a flag bit is set."""
        return bool(self.flags & flag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = self.component.flatten() if self.component else f"action={self.action}"
        return f"Intent({target})"


def explicit(package: str, class_name: str, **extras: Any) -> Intent:
    """Convenience constructor for an explicit intent."""
    return Intent(component=ComponentName(package, class_name), extras=extras)


def implicit(action: str, *categories: str, **extras: Any) -> Intent:
    """Convenience constructor for an implicit intent."""
    return Intent(action=action, categories=frozenset(categories), extras=extras)

"""SurfaceFlinger and its shared-memory side channel.

The paper's malware #4 infers UI state "like the technique used in the
UI inference attack [8]": SurfaceFlinger's shared virtual memory size
changes when the rendered UI changes, and the offset is stable enough to
recognise a specific app's exit dialog.  The simulator models a
deterministic mapping from the rendered UI (foreground activity plus any
dialog) to a shared-VM size, and exposes the same world-readable size
that ``/proc`` exposes on a real device — no permission required, which
is what makes the attack stealthy.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .activity import ActivityRecord

UiStateProvider = Callable[[], Optional["ActivityRecord"]]

_BASE_SHARED_VM = 8_192  # KiB: SurfaceFlinger's floor with an empty display


def _ui_signature(package: str, component: str, dialog: Optional[str]) -> int:
    """Deterministic per-UI shared-VM contribution in KiB."""
    digest = hashlib.sha256(
        f"{package}/{component}/{dialog or ''}".encode("utf-8")
    ).digest()
    return 256 + int.from_bytes(digest[:2], "big") % 4096


class SurfaceFlinger:
    """Tracks rendered-UI state and the derived shared-VM size."""

    def __init__(self, front_provider: UiStateProvider) -> None:
        self._front_provider = front_provider
        self._history: List[Tuple[str, int]] = []

    def invalidate(self) -> None:
        """The UI re-rendered; recompute (history kept for debugging)."""
        self._history.append((self.current_ui_key(), self.shared_vm_size_kib()))
        if len(self._history) > 256:
            del self._history[: len(self._history) - 256]

    def current_ui_key(self) -> str:
        """Opaque description of what is on screen (internal)."""
        record = self._front_provider()
        if record is None:
            return "<none>"
        dialog = record.instance.dialog
        return f"{record.package}/{record.component_name}/{dialog or ''}"

    def shared_vm_size_kib(self) -> int:
        """The world-readable shared-VM size of the render process.

        This is the malware-visible value: it leaks *which* UI is being
        rendered without leaking why, exactly like the real side channel.
        """
        record = self._front_provider()
        if record is None:
            return _BASE_SHARED_VM
        return _BASE_SHARED_VM + _ui_signature(
            record.package, record.component_name, record.instance.dialog
        )

    @staticmethod
    def expected_size_for(
        package: str, component: str, dialog: Optional[str]
    ) -> int:
        """What the shared-VM size would be for a given UI.

        Malware precomputes this offline ("the attacker can easily
        understand [UI states] by either installing the app or reverse
        engineering the app", §III-B) and compares at runtime.
        """
        return _BASE_SHARED_VM + _ui_signature(package, component, dialog)

"""The ActivityManager ("am").

Orchestrates every component interaction the paper's attacks abuse:

* activity starts (explicit and implicit with resolver), including the
  lifecycle choreography — pause the outgoing activity, resume the
  incoming one, stop fully-covered ones (transparent covers only pause);
* task-stack reordering (home button, move-to-front);
* the full service lifecycle with the bind/unbind liveness rule of
  attack #3;
* broadcasts (runtime and manifest receivers — how malware auto-starts
  on ACTION_USER_PRESENT);
* force-stop and binder-death cleanup.

The paper's E-Android "mainly relies on 'am' ... to record collateral
energy events" (§V); here those recording points are typed event
publications on the device's :class:`~repro.telemetry.TelemetryBus`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .activity import Activity, ActivityRecord, ActivityState
from .app import App, Context
from .errors import ActivityNotFoundError, BadStateError, SecurityException
from .intent import ComponentName, Intent
from .manifest import REORDER_TASKS, ComponentKind
from ..telemetry import (
    ActivityFinishedEvent,
    ActivityMoveToFrontEvent,
    ActivityStartEvent,
    ForegroundChangedEvent,
    PackageStoppedEvent,
    ServiceBindEvent,
    ServiceStartEvent,
    ServiceStopEvent,
    ServiceStopSelfEvent,
    ServiceUnbindEvent,
    TelemetryBus,
)
from .service import Service, ServiceConnection, ServiceRecord, ServiceState
from .task_stack import TaskStackSupervisor
from .timeline import ForegroundTimeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.kernel import Kernel
    from ..sim.process import ProcessRecord, ProcessTable
    from .binder import Binder
    from .display import DisplayManager
    from .package_manager import PackageManager

ResolverPolicy = Callable[
    [Intent, List[Tuple[App, "object"]]], Tuple[App, "object"]
]

ServiceKey = Tuple[str, str]  # (package, class name)


class ActivityManager:
    """Component lifecycle orchestration and the framework event source."""

    def __init__(
        self,
        kernel: "Kernel",
        package_manager: "PackageManager",
        processes: "ProcessTable",
        binder: "Binder",
        display: "DisplayManager",
        telemetry: TelemetryBus,
    ) -> None:
        self._kernel = kernel
        self._pm = package_manager
        self._processes = processes
        self._binder = binder
        self._display = display
        self._telemetry = telemetry
        self.supervisor = TaskStackSupervisor()
        self.timeline = ForegroundTimeline()
        self._services: Dict[ServiceKey, ServiceRecord] = {}
        self._receivers: Dict[str, List[Tuple[int, Callable[[Intent], None]]]] = {}
        self._resolver_policy: Optional[ResolverPolicy] = None
        self._ui_invalidate: Callable[[], None] = lambda: None
        self._last_foreground: Optional[int] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_resolver_policy(self, policy: Optional[ResolverPolicy]) -> None:
        """Install the "user choice" policy for implicit-intent resolution.

        With several matching handlers Android shows resolverActivity;
        the policy stands in for the user's tap.  The default picks the
        first handler in package-name order (deterministic).
        """
        self._resolver_policy = policy

    def set_ui_invalidate(self, callback: Callable[[], None]) -> None:
        """Hook SurfaceFlinger invalidation into UI-changing operations."""
        self._ui_invalidate = callback

    # ------------------------------------------------------------------
    # foreground bookkeeping
    # ------------------------------------------------------------------
    def foreground_record(self) -> Optional[ActivityRecord]:
        """The activity currently holding the screen."""
        return self.supervisor.front_record()

    def foreground_uid(self) -> Optional[int]:
        """The uid of the foreground activity's app."""
        record = self.foreground_record()
        return record.uid if record else None

    def _note_foreground(self, cause: str, initiator_uid: Optional[int]) -> None:
        new_uid = self.foreground_uid()
        if new_uid == self._last_foreground:
            return
        previous = self._last_foreground
        self._last_foreground = new_uid
        now = self._kernel.now
        self.timeline.record(now, new_uid)
        self._display.set_foreground_uid(new_uid)
        self._telemetry.publish(
            ForegroundChangedEvent(
                time=now,
                previous_uid=previous,
                new_uid=new_uid,
                cause=cause,
                initiator_uid=initiator_uid,
            )
        )
        self._ui_invalidate()

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def process_of_uid(self, uid: int) -> Optional["ProcessRecord"]:
        """The app's live process, if running."""
        app = self._pm.app_for_uid(uid)
        if app.process is not None and app.process.alive:
            return app.process
        return None

    def _ensure_process(self, app: App) -> "ProcessRecord":
        if app.process is None or not app.process.alive:
            assert app.uid is not None
            app.process = self._processes.spawn(
                app.uid, app.package, now=self._kernel.now
            )
        return app.process

    # ------------------------------------------------------------------
    # activities
    # ------------------------------------------------------------------
    def start_activity(
        self, caller_uid: int, intent: Intent, user_initiated: bool = False
    ) -> ActivityRecord:
        """Start an activity; returns its record.

        Implicit intents resolve through the (simulated) resolver UI;
        per the paper, observers see a single start event carrying the
        *original* caller and the finally chosen target.
        """
        app, decl = self._resolve_activity(caller_uid, intent)
        resolved_intent = intent
        if not intent.is_explicit:
            resolved_intent = intent.with_component(
                ComponentName(app.package, decl.name)
            )
        assert app.uid is not None
        self._binder.transact(caller_uid, app.uid)
        self._ensure_process(app)

        previous_front = self.supervisor.front_record()

        instance: Activity = app.component_class(decl.name)()
        assert app.system is not None
        instance.context = Context(app.system, app)
        instance.intent = resolved_intent
        record = ActivityRecord(
            instance=instance,
            uid=app.uid,
            package=app.package,
            component_name=decl.name,
            transparent=decl.transparent or instance.transparent,
            launched_by_uid=caller_uid,
            launch_time=self._kernel.now,
        )
        instance.record = record

        task = self.supervisor.get_or_create_task(app.package)
        task.push(record)
        self.supervisor.move_to_front(task)

        # Lifecycle choreography: create/start the incoming activity,
        # pause the outgoing one, resume the incoming, then stop every
        # activity the new (opaque) one fully covers.
        self._transition(record, ActivityState.CREATED)
        self._transition(record, ActivityState.STARTED)
        if previous_front is not None and previous_front.state == ActivityState.RESUMED:
            self._transition(previous_front, ActivityState.PAUSED)
        self._transition(record, ActivityState.RESUMED)
        if not record.transparent:
            self._stop_covered(except_record=record)

        self._telemetry.publish(
            ActivityStartEvent(
                time=self._kernel.now,
                caller_uid=caller_uid,
                target_uid=app.uid,
                record=record,
                intent=resolved_intent,
                user_initiated=user_initiated,
            )
        )
        self._note_foreground("start", None if user_initiated else caller_uid)
        return record

    def move_task_to_front(
        self, caller_uid: int, package: str, user_initiated: bool = False
    ) -> None:
        """Bring an existing task to the front without starting anything.

        "Users or apps equipped with proper permissions could reorder
        the stack" (§IV-A): an app reordering a task that is not its own
        needs REORDER_TASKS (system uids and the user are exempt).
        """
        task = self.supervisor.task_for(package)
        if task is None or task.empty:
            raise ActivityNotFoundError(f"no task for package {package!r}")
        caller_app = None
        if not self._pm.is_system_uid(caller_uid):
            caller_app = self._pm.app_for_uid(caller_uid)
        if (
            not user_initiated
            and caller_app is not None
            and caller_app.package != package
            and not self._pm.check_permission(caller_uid, REORDER_TASKS)
        ):
            raise SecurityException(
                f"uid {caller_uid} lacks {REORDER_TASKS} to reorder {package!r}"
            )
        previous_front = self.supervisor.front_record()
        self.supervisor.move_to_front(task)
        target = task.top
        assert target is not None
        if previous_front is not None and previous_front is not target:
            if previous_front.state == ActivityState.RESUMED:
                self._transition(previous_front, ActivityState.PAUSED)
        self._bring_to_resumed(target)
        if not target.transparent:
            self._stop_covered(except_record=target)
        self._telemetry.publish(
            ActivityMoveToFrontEvent(
                time=self._kernel.now,
                caller_uid=caller_uid,
                target_uid=target.uid,
                user_initiated=user_initiated,
            )
        )
        self._note_foreground(
            "move_front", None if user_initiated else caller_uid
        )

    def finish_activity(self, record: ActivityRecord) -> None:
        """Destroy an activity and promote whatever it uncovered."""
        if record.state == ActivityState.DESTROYED:
            raise BadStateError(f"{record} already destroyed")
        record.finishing = True
        was_foreground = record.is_foreground
        task = self.supervisor.task_for(record.package)
        if task is not None:
            task.remove(record)
            self.supervisor.remove_if_empty(task)
        self._teardown(record)
        self._telemetry.publish(
            ActivityFinishedEvent(time=self._kernel.now, record=record)
        )
        if was_foreground:
            new_front = self.supervisor.front_record()
            if new_front is not None:
                self._bring_to_resumed(new_front)
            self._note_foreground("finish", record.uid)
        else:
            self._ui_invalidate()

    def press_back(self) -> None:
        """User back press: offer it to the activity, else finish it."""
        record = self.supervisor.front_record()
        if record is None:
            return
        handler = getattr(record.instance, "on_back_pressed", None)
        if handler is not None and handler():
            self._ui_invalidate()
            return
        self.finish_activity(record)

    def tap_dialog_ok(self) -> None:
        """User taps OK on the front activity's dialog (if any).

        Delegates to the activity's ``on_dialog_ok`` hook — but if a
        *transparent* activity covers the dialog, the tap lands on the
        cover instead, which is precisely malware #4's hijack.
        """
        record = self.supervisor.front_record()
        if record is None:
            return
        handler = getattr(record.instance, "on_dialog_ok", None)
        if handler is not None:
            handler()

    # ------------------------------------------------------------------
    # services
    # ------------------------------------------------------------------
    def start_service(self, caller_uid: int, intent: Intent) -> ServiceRecord:
        """startService(): create if needed, set the started flag."""
        record, app = self._resolve_or_create_service(caller_uid, intent)
        record.started = True
        record.instance.on_start_command(intent)
        self._telemetry.publish(
            ServiceStartEvent(
                time=self._kernel.now,
                caller_uid=caller_uid,
                target_uid=record.uid,
                record=record,
            )
        )
        return record

    def stop_service(self, caller_uid: int, intent: Intent) -> bool:
        """stopService(): clear the started flag; destroy if unbound."""
        app, decl = self._resolve_service_decl(caller_uid, intent)
        key = (app.package, decl.name)
        record = self._services.get(key)
        if record is None:
            return False
        assert app.uid is not None
        self._binder.transact(caller_uid, app.uid)
        record.started = False
        self._telemetry.publish(
            ServiceStopEvent(
                time=self._kernel.now,
                caller_uid=caller_uid,
                target_uid=record.uid,
                record=record,
            )
        )
        self._maybe_destroy_service(record)
        return True

    def stop_self(self, record: ServiceRecord) -> None:
        """stopSelf() from inside the service."""
        if record.state == ServiceState.DESTROYED:
            raise BadStateError(f"{record} already destroyed")
        record.started = False
        self._telemetry.publish(
            ServiceStopSelfEvent(time=self._kernel.now, record=record)
        )
        self._maybe_destroy_service(record)

    def bind_service(self, caller_uid: int, intent: Intent) -> ServiceConnection:
        """bindService(): the returned connection keeps the service alive."""
        record, app = self._resolve_or_create_service(caller_uid, intent)
        caller_app = self._pm.app_for_uid(caller_uid)
        caller_process = self._ensure_process(caller_app)
        connection = ServiceConnection(
            client_uid=caller_uid, client_pid=caller_process.pid, record=record
        )
        first_binding = not record.connections
        record.add_connection(connection)
        if first_binding:
            record.instance.on_bind(intent)
        # Client death tears the binding down (Binder link-to-death).
        connection.death_token = self._binder.link_to_death(
            caller_process.pid,
            lambda _dead, conn=connection: self._unbind_by_death(conn),
        )
        self._telemetry.publish(
            ServiceBindEvent(
                time=self._kernel.now,
                caller_uid=caller_uid,
                target_uid=record.uid,
                record=record,
            )
        )
        return connection

    def unbind_service(self, connection: ServiceConnection) -> None:
        """unbindService(): drop a connection; destroy if nothing keeps it."""
        if not connection.bound:
            raise BadStateError(f"{connection} is not bound")
        if connection.death_token is not None:
            self._binder.unlink_to_death(connection.death_token)
            connection.death_token = None
        self._finish_unbind(connection)

    def _unbind_by_death(self, connection: ServiceConnection) -> None:
        if connection.bound:
            connection.death_token = None
            self._finish_unbind(connection)

    def _finish_unbind(self, connection: ServiceConnection) -> None:
        connection.bound = False
        record = connection.record
        record.remove_connection(connection)
        if not record.connections:
            record.instance.on_unbind()
        self._telemetry.publish(
            ServiceUnbindEvent(
                time=self._kernel.now,
                caller_uid=connection.client_uid,
                target_uid=record.uid,
                record=record,
            )
        )
        self._maybe_destroy_service(record)

    def service_record(self, package: str, class_name: str) -> Optional[ServiceRecord]:
        """Look up a live service."""
        return self._services.get((package, class_name))

    def running_services(self, uid: Optional[int] = None) -> List[ServiceRecord]:
        """All live services, optionally of one uid."""
        return [
            record
            for record in self._services.values()
            if uid is None or record.uid == uid
        ]

    # ------------------------------------------------------------------
    # broadcasts
    # ------------------------------------------------------------------
    def register_receiver(
        self, uid: int, action: str, callback: Callable[[Intent], None]
    ) -> None:
        """Register a runtime broadcast receiver."""
        self._receivers.setdefault(action, []).append((uid, callback))

    def send_broadcast(self, caller_uid: int, intent: Intent) -> int:
        """Deliver a broadcast; manifest receivers auto-start their app.

        Returns the number of receivers reached.
        """
        if intent.action is None:
            raise ValueError("broadcast intents need an action")
        delivered = 0
        for uid, callback in list(self._receivers.get(intent.action, [])):
            self._binder.transact(caller_uid, uid)
            callback(intent)
            delivered += 1
        for app, decl in self._pm.query_intent_handlers(
            intent, ComponentKind.RECEIVER
        ):
            assert app.uid is not None
            self._binder.transact(caller_uid, app.uid)
            self._ensure_process(app)
            receiver = app.component_class(decl.name)()
            assert app.system is not None
            receiver.context = Context(app.system, app)  # type: ignore[attr-defined]
            receiver.on_receive(intent)
            delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # force stop / death cleanup
    # ------------------------------------------------------------------
    def force_stop(self, package: str) -> None:
        """Settings' Force Stop: kill the app's process and components.

        Killing the process fires binder death links, which release
        wakelocks and unbind the app's outgoing service connections.
        """
        app = self._pm.app_for_package(package)
        assert app.uid is not None
        had_foreground = self.foreground_uid() == app.uid
        # Destroy activities.
        for record in self.supervisor.records_of_uid(app.uid):
            task = self.supervisor.task_for(record.package)
            if task is not None:
                task.remove(record)
                self.supervisor.remove_if_empty(task)
            self._teardown(record)
            self._telemetry.publish(
                ActivityFinishedEvent(time=self._kernel.now, record=record)
            )
        # Destroy this app's services (incoming bindings die with it);
        # observers hear the forced unbinds/stops so trackers stay exact.
        for record in [s for s in self._services.values() if s.uid == app.uid]:
            for connection in list(record.connections):
                if connection.death_token is not None:
                    self._binder.unlink_to_death(connection.death_token)
                    connection.death_token = None
                connection.bound = False
                record.remove_connection(connection)
                self._telemetry.publish(
                    ServiceUnbindEvent(
                        time=self._kernel.now,
                        caller_uid=connection.client_uid,
                        target_uid=record.uid,
                        record=record,
                    )
                )
            if record.started:
                record.started = False
                self._telemetry.publish(
                    ServiceStopEvent(
                        time=self._kernel.now,
                        caller_uid=app.uid,
                        target_uid=record.uid,
                        record=record,
                    )
                )
            self._destroy_service(record)
        # Kill the process: fires link-to-death for wakelocks and for the
        # app's own outgoing bindings to other apps' services.
        if app.process is not None and app.process.alive:
            self._processes.kill(app.process.pid, now=self._kernel.now)
        app.process = None
        # Window brightness is a *window* attribute: it dies with the
        # app's windows, so a relaunch must not silently re-apply it.
        self._display.set_window_brightness(app.uid, None)
        # Package-level death notification: per-component events above
        # can't tell observers "this app is gone"; attack windows whose
        # *target* died must close here or they silently span the app's
        # next (fresh, user-initiated) life.
        self._telemetry.publish(
            PackageStoppedEvent(time=self._kernel.now, uid=app.uid, package=package)
        )
        if had_foreground:
            new_front = self.supervisor.front_record()
            if new_front is not None:
                self._bring_to_resumed(new_front)
            self._note_foreground("finish", app.uid)

    # ------------------------------------------------------------------
    # lifecycle plumbing
    # ------------------------------------------------------------------
    def _stop_covered(self, except_record: ActivityRecord) -> None:
        """Stop every activity no longer visible behind the front task."""
        front_task = self.supervisor.front_task
        visible = set()
        if front_task is not None:
            visible = {r.record_id for r in front_task.visible_records()}
        for record in self.supervisor.all_records():
            if record.record_id in visible or record is except_record:
                continue
            if record.state in (ActivityState.RESUMED, ActivityState.PAUSED):
                if record.state == ActivityState.RESUMED:
                    self._transition(record, ActivityState.PAUSED)
                self._transition(record, ActivityState.STOPPED)

    def _bring_to_resumed(self, record: ActivityRecord) -> None:
        if record.state == ActivityState.RESUMED:
            return
        if record.state == ActivityState.STOPPED:
            record.instance.on_restart()
            self._transition(record, ActivityState.STARTED)
        self._transition(record, ActivityState.RESUMED)

    def _transition(self, record: ActivityRecord, target: ActivityState) -> None:
        hooks = {
            ActivityState.CREATED: record.instance.on_create,
            ActivityState.STARTED: record.instance.on_start,
            ActivityState.RESUMED: record.instance.on_resume,
            ActivityState.PAUSED: record.instance.on_pause,
            ActivityState.STOPPED: record.instance.on_stop,
            ActivityState.DESTROYED: record.instance.on_destroy,
        }
        record.state = target
        hooks[target]()

    def _teardown(self, record: ActivityRecord) -> None:
        """Run the remaining lifecycle down to DESTROYED."""
        if record.state == ActivityState.RESUMED:
            self._transition(record, ActivityState.PAUSED)
        if record.state == ActivityState.PAUSED:
            self._transition(record, ActivityState.STOPPED)
        if record.state != ActivityState.DESTROYED:
            self._transition(record, ActivityState.DESTROYED)

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def _resolve_activity(self, caller_uid: int, intent: Intent):
        if intent.is_explicit:
            assert intent.component is not None
            return self._pm.resolve_component(
                caller_uid, intent.component, ComponentKind.ACTIVITY
            )
        handlers = self._pm.query_intent_handlers(intent, ComponentKind.ACTIVITY)
        if not handlers:
            raise ActivityNotFoundError(f"no activity handles {intent!r}")
        if len(handlers) == 1:
            return handlers[0]
        # Several candidates: the resolver UI appears; apply the policy
        # standing in for the user's choice.
        handlers.sort(key=lambda pair: pair[0].package)
        if self._resolver_policy is not None:
            return self._resolver_policy(intent, handlers)
        return handlers[0]

    def _resolve_service_decl(self, caller_uid: int, intent: Intent):
        if intent.is_explicit:
            assert intent.component is not None
            return self._pm.resolve_component(
                caller_uid, intent.component, ComponentKind.SERVICE
            )
        handlers = self._pm.query_intent_handlers(intent, ComponentKind.SERVICE)
        if not handlers:
            raise ActivityNotFoundError(f"no service handles {intent!r}")
        handlers.sort(key=lambda pair: pair[0].package)
        return handlers[0]

    def _resolve_or_create_service(self, caller_uid: int, intent: Intent):
        app, decl = self._resolve_service_decl(caller_uid, intent)
        assert app.uid is not None
        self._binder.transact(caller_uid, app.uid)
        self._ensure_process(app)
        key = (app.package, decl.name)
        record = self._services.get(key)
        if record is None:
            instance: Service = app.component_class(decl.name)()
            assert app.system is not None
            instance.context = Context(app.system, app)
            record = ServiceRecord(
                instance=instance,
                uid=app.uid,
                package=app.package,
                component_name=decl.name,
                create_time=self._kernel.now,
            )
            instance.record = record
            record.state = ServiceState.RUNNING
            self._services[key] = record
            instance.on_create()
        return record, app

    def _maybe_destroy_service(self, record: ServiceRecord) -> None:
        if not record.should_stay_alive and record.state != ServiceState.DESTROYED:
            self._destroy_service(record)

    def _destroy_service(self, record: ServiceRecord) -> None:
        record.state = ServiceState.DESTROYED
        record.instance.on_destroy()
        self._services.pop((record.package, record.component_name), None)

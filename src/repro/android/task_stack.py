"""Task stacks — Android's activity back-stack bookkeeping.

"Android maintains certain task stacks to manage activities.  When an
activity is sent back to background, it remains in the stacks keeping
all statuses at that time ... users or apps equipped with proper
permissions could reorder the stack." (§IV-A).  E-Android watches these
stacks to delimit attack windows, so the simulator models them
explicitly: a :class:`TaskRecord` per app (package affinity) and a
:class:`TaskStackSupervisor` ordering tasks by recency.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from .activity import ActivityRecord


class TaskRecord:
    """One back stack of activities sharing a task affinity (package)."""

    _ids = itertools.count(1)

    def __init__(self, affinity: str) -> None:
        self.task_id = next(self._ids)
        self.affinity = affinity
        self.activities: List[ActivityRecord] = []  # bottom -> top

    @property
    def top(self) -> Optional[ActivityRecord]:
        """The top-most activity, or None for an empty task."""
        return self.activities[-1] if self.activities else None

    @property
    def empty(self) -> bool:
        """Whether the task holds no activities."""
        return not self.activities

    def push(self, record: ActivityRecord) -> None:
        """Place an activity on top of the stack."""
        self.activities.append(record)

    def pop(self) -> Optional[ActivityRecord]:
        """Remove and return the top activity."""
        return self.activities.pop() if self.activities else None

    def remove(self, record: ActivityRecord) -> bool:
        """Remove a specific activity wherever it sits in the stack."""
        try:
            self.activities.remove(record)
            return True
        except ValueError:
            return False

    def visible_records(self) -> List[ActivityRecord]:
        """Top activity plus any activities showing through transparency.

        Walking down from the top, every activity covered only by
        transparent activities above it is still visible.
        """
        visible: List[ActivityRecord] = []
        for record in reversed(self.activities):
            visible.append(record)
            if not record.transparent:
                break
        return visible

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = [r.component_name for r in self.activities]
        return f"TaskRecord(#{self.task_id}, {self.affinity}, {names})"


class TaskStackSupervisor:
    """Recency-ordered collection of tasks; the last task is frontmost."""

    def __init__(self) -> None:
        self._tasks: List[TaskRecord] = []
        self._by_affinity: Dict[str, TaskRecord] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def front_task(self) -> Optional[TaskRecord]:
        """The task currently at the front (showing on screen)."""
        return self._tasks[-1] if self._tasks else None

    @property
    def tasks(self) -> List[TaskRecord]:
        """All tasks, back to front (copy)."""
        return list(self._tasks)

    def task_for(self, affinity: str) -> Optional[TaskRecord]:
        """The existing task for an affinity, if any."""
        return self._by_affinity.get(affinity)

    def get_or_create_task(self, affinity: str) -> TaskRecord:
        """The task for an affinity, creating (at front) if missing."""
        task = self._by_affinity.get(affinity)
        if task is None:
            task = TaskRecord(affinity)
            self._tasks.append(task)
            self._by_affinity[affinity] = task
        return task

    def move_to_front(self, task: TaskRecord) -> None:
        """Reorder a task to the front (Android's moveTaskToFront)."""
        if task in self._tasks:
            self._tasks.remove(task)
        self._tasks.append(task)

    def move_to_back(self, task: TaskRecord) -> None:
        """Send a task behind every other task."""
        if task in self._tasks:
            self._tasks.remove(task)
        self._tasks.insert(0, task)

    def remove_if_empty(self, task: TaskRecord) -> bool:
        """Drop a task that has no activities left."""
        if task.empty and task in self._tasks:
            self._tasks.remove(task)
            self._by_affinity.pop(task.affinity, None)
            return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def front_record(self) -> Optional[ActivityRecord]:
        """The activity on top of the front task."""
        front = self.front_task
        return front.top if front else None

    def all_records(self) -> List[ActivityRecord]:
        """Every live activity record, back to front, bottom to top."""
        return [record for task in self._tasks for record in task.activities]

    def find_record(self, record_id: int) -> Optional[ActivityRecord]:
        """Look up a record by id."""
        for record in self.all_records():
            if record.record_id == record_id:
                return record
        return None

    def records_of_uid(self, uid: int) -> List[ActivityRecord]:
        """Every live record belonging to a uid."""
        return [record for record in self.all_records() if record.uid == uid]

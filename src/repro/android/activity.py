"""Activities and their lifecycle.

Implements the Android activity lifecycle the paper's attacks exploit:

* ``onPause`` fires when a *transparent* activity covers the current one
  (the dialog/cover trick of malware #4);
* ``onStop`` fires when the activity leaves the screen entirely — e.g.
  the home UI comes up — and an app that only releases its wakelock in
  ``onDestroy`` keeps draining power from the stop state (§III-A);
* ``onDestroy`` fires only when the activity is finished or its process
  dies.

App code subclasses :class:`Activity` and overrides the ``on_*`` hooks;
the :class:`~repro.android.activity_manager.ActivityManager` drives the
transitions and keeps per-instance :class:`ActivityRecord` bookkeeping.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .app import Context
    from .intent import Intent


class ActivityState(Enum):
    """Lifecycle states, in forward order."""

    INITIALIZED = "initialized"
    CREATED = "created"
    STARTED = "started"
    RESUMED = "resumed"
    PAUSED = "paused"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class Activity:
    """Base class for app-defined activities.

    Subclasses override lifecycle hooks.  ``self.context`` exposes the
    framework API (start_activity, bind_service, wakelocks, workload
    knobs) and ``self.intent`` the intent that started the activity.
    """

    #: Declared transparent (Theme.Translucent): covering another
    #: activity only pauses it instead of stopping it.
    transparent: bool = False

    def __init__(self) -> None:
        self.context: Optional["Context"] = None
        self.intent: Optional["Intent"] = None
        self.record: Optional["ActivityRecord"] = None
        self.dialog: Optional[str] = None

    # -- lifecycle hooks (override in subclasses) -----------------------
    def on_create(self) -> None:
        """Called once when the instance is created."""

    def on_start(self) -> None:
        """Called when the activity becomes visible."""

    def on_resume(self) -> None:
        """Called when the activity takes the foreground."""

    def on_pause(self) -> None:
        """Called when the activity loses focus but may stay visible."""

    def on_stop(self) -> None:
        """Called when the activity is no longer visible."""

    def on_restart(self) -> None:
        """Called when a stopped activity is coming back."""

    def on_destroy(self) -> None:
        """Called before the instance is discarded."""

    # -- conveniences -----------------------------------------------------
    def finish(self) -> None:
        """Ask the ActivityManager to finish this activity."""
        if self.record is None or self.context is None:
            raise RuntimeError("activity is not attached to the framework")
        self.context.finish_activity(self.record)

    def show_dialog(self, name: str) -> None:
        """Display a modal dialog (e.g. the exit-confirmation dialog).

        Dialogs are not activities, but they change the rendered UI — so
        SurfaceFlinger's shared memory shifts, which is exactly the side
        channel malware #4 uses to detect the exit dialog.
        """
        self.dialog = name
        if self.context is not None:
            self.context.ui_changed()

    def dismiss_dialog(self) -> None:
        """Remove the current dialog."""
        self.dialog = None
        if self.context is not None:
            self.context.ui_changed()

    @property
    def class_name(self) -> str:
        """The component class name used in intents/manifests."""
        return type(self).__name__


class ActivityRecord:
    """Framework-side bookkeeping for one live activity instance."""

    _ids = itertools.count(1)

    def __init__(
        self,
        instance: Activity,
        uid: int,
        package: str,
        component_name: str,
        transparent: bool,
        launched_by_uid: int,
        launch_time: float,
    ) -> None:
        self.record_id = next(self._ids)
        self.instance = instance
        self.uid = uid
        self.package = package
        self.component_name = component_name
        self.transparent = transparent
        self.launched_by_uid = launched_by_uid
        self.launch_time = launch_time
        self.state = ActivityState.INITIALIZED
        self.finishing = False

    @property
    def is_foreground(self) -> bool:
        """Whether this record currently holds the RESUMED state."""
        return self.state == ActivityState.RESUMED

    @property
    def visible(self) -> bool:
        """Whether the activity is on screen (resumed or paused-under-transparent)."""
        return self.state in (ActivityState.RESUMED, ActivityState.PAUSED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ActivityRecord({self.package}/{self.component_name}, "
            f"uid={self.uid}, state={self.state.value})"
        )

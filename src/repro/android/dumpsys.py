"""``dumpsys``-style textual diagnostics for a simulated device.

Real Android debugging leans on ``adb shell dumpsys <service>``; this
module provides the same affordance for the simulator — task stacks,
services with their bindings, wakelocks, and battery/power state — which
the examples and failure-investigation tests use liberally.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .framework import AndroidSystem


def dumpsys_activity(system: "AndroidSystem") -> str:
    """Task stacks, back to front, with per-activity lifecycle states."""
    lines = ["ACTIVITY MANAGER (dumpsys activity)"]
    supervisor = system.am.supervisor
    tasks = supervisor.tasks
    if not tasks:
        lines.append("  (no tasks)")
    for task in reversed(tasks):  # front task first, like the real dump
        front_marker = " [front]" if task is supervisor.front_task else ""
        lines.append(f"  Task #{task.task_id} affinity={task.affinity}{front_marker}")
        for record in reversed(task.activities):
            lines.append(
                f"    {record.package}/{record.component_name} "
                f"state={record.state.value} "
                f"launchedBy=uid:{record.launched_by_uid}"
                f"{' transparent' if record.transparent else ''}"
            )
    foreground = system.am.foreground_record()
    lines.append(
        f"  mFocusedActivity: "
        f"{foreground.package + '/' + foreground.component_name if foreground else 'null'}"
    )
    return "\n".join(lines)


def dumpsys_services(system: "AndroidSystem") -> str:
    """Running services with started flags and live bindings."""
    lines = ["ACTIVE SERVICES (dumpsys activity services)"]
    records = system.am.running_services()
    if not records:
        lines.append("  (none)")
    for record in records:
        lines.append(
            f"  {record.package}/{record.component_name} uid={record.uid} "
            f"started={record.started} bindings={len(record.connections)}"
        )
        for connection in record.connections:
            lines.append(
                f"    ConnectionRecord #{connection.connection_id} "
                f"client=uid:{connection.client_uid} pid={connection.client_pid}"
            )
    return "\n".join(lines)


def dumpsys_power(system: "AndroidSystem") -> str:
    """Wakelocks, interactivity, screen and suspend state."""
    power = system.power_manager
    lines = [
        "POWER MANAGER (dumpsys power)",
        f"  mInteractive={power.is_interactive}",
        f"  mScreenOn={system.display.is_screen_on} "
        f"brightness={system.display.brightness} "
        f"auto={system.display.is_auto_mode}",
        f"  mDeviceSuspended={system.hardware.suspended}",
        f"  screenOffTimeout={power.screen_timeout_s():.0f}s",
        "  Wake Locks:",
    ]
    locks = power.held_locks()
    if not locks:
        lines.append("    (none)")
    for lock in locks:
        lines.append(
            f"    {lock.lock_type} '{lock.tag}' uid={lock.uid} "
            f"acquired@{lock.acquire_time:.1f}s"
        )
    return "\n".join(lines)


def dumpsys_battery(system: "AndroidSystem") -> str:
    """Battery level plus instantaneous per-owner draw."""
    meter = system.hardware.meter
    pm = system.package_manager
    lines = [
        "BATTERY (dumpsys battery)",
        f"  level: {system.battery.percent():.2f}%",
        f"  draw: {meter.current_power_mw():.1f} mW",
        "  per-owner draw:",
    ]
    draws: List[tuple] = []
    for owner in meter.owners():
        power = meter.current_power_mw(owner)
        if power > 0:
            if owner == -100:
                label = "Screen"
            elif owner == -1:
                label = "System"
            else:
                label = pm.label_for_uid(owner)
            draws.append((power, label))
    for power, label in sorted(draws, reverse=True):
        lines.append(f"    {label:<16} {power:8.1f} mW")
    return "\n".join(lines)


def dumpsys(system: "AndroidSystem") -> str:
    """Every section, concatenated."""
    return "\n\n".join(
        [
            dumpsys_activity(system),
            dumpsys_services(system),
            dumpsys_power(system),
            dumpsys_battery(system),
        ]
    )

"""Binder IPC substrate.

Real Android routes every cross-process call through the Binder kernel
driver, which also delivers *death notifications*: a process can link a
callback to another process's death.  PowerManagerService uses this to
release wakelocks of crashed apps; ActivityManager uses it to tear down
service bindings.  The paper's wakelock attacks live in the gap this
creates — a wakelock is only force-released when the owning *process*
dies, not when its activity merely stops.

The simulator's Binder wraps the process table's link-to-death and adds
transaction accounting so the micro-benchmark (Fig. 10) can report IPC
counts alongside timings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict

from ..sim.process import ProcessRecord, ProcessTable


@dataclass
class DeathToken:
    """Handle for a registered death link (mirrors ``IBinder.DeathRecipient``)."""

    token_id: int
    pid: int
    active: bool = True


class Binder:
    """Cross-process call bookkeeping and death notification routing."""

    def __init__(self, processes: ProcessTable) -> None:
        self._processes = processes
        self._token_ids = itertools.count(1)
        self._tokens: Dict[int, DeathToken] = {}
        self._unlink_callbacks: Dict[int, Callable[[], None]] = {}
        self._transaction_count = 0

    @property
    def transaction_count(self) -> int:
        """Number of binder transactions recorded so far."""
        return self._transaction_count

    def transact(self, caller_uid: int, target_uid: int) -> None:
        """Record one cross-process transaction (no-op for same uid).

        Only the count matters to the reproduction; payload marshalling
        is irrelevant to energy attribution.
        """
        if caller_uid != target_uid:
            self._transaction_count += 1

    def link_to_death(
        self, pid: int, recipient: Callable[[ProcessRecord], None]
    ) -> DeathToken:
        """Run ``recipient`` when ``pid`` dies; returns a cancellable token."""
        record = self._processes.get(pid)
        token = DeathToken(token_id=next(self._token_ids), pid=pid)

        def observer(dead: ProcessRecord) -> None:
            if token.active:
                token.active = False
                recipient(dead)

        record.link_to_death(observer)
        self._tokens[token.token_id] = token
        self._unlink_callbacks[token.token_id] = lambda: record.unlink_to_death(observer)
        return token

    def unlink_to_death(self, token: DeathToken) -> bool:
        """Cancel a death link; returns whether it was still active."""
        if not token.active:
            return False
        token.active = False
        unlink = self._unlink_callbacks.pop(token.token_id, None)
        if unlink is not None:
            unlink()
        self._tokens.pop(token.token_id, None)
        return True

"""Services and their lifecycle.

Services implement the paper's attack #3 substrate: a *started* service
must be stopped with ``stopService``/``stopSelf``; a *bound* service
lives until **all** connections unbind — even if ``stopService`` has
already been called.  A malware binding a victim's exported service
therefore keeps it (and its workload) alive indefinitely while the
victim believes it stopped the service.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import TYPE_CHECKING, Dict, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .app import Context
    from .binder import DeathToken
    from .intent import Intent


class ServiceState(Enum):
    """Coarse service lifecycle states."""

    CREATED = "created"
    RUNNING = "running"
    DESTROYED = "destroyed"


class Service:
    """Base class for app-defined services.

    ``on_start_command`` runs on every ``startService``; ``on_bind`` /
    ``on_unbind`` bracket connections; ``on_destroy`` runs when the
    framework tears the service down (no started flag, no bindings).
    """

    def __init__(self) -> None:
        self.context: Optional["Context"] = None
        self.record: Optional["ServiceRecord"] = None

    def on_create(self) -> None:
        """Called once when the service instance comes up."""

    def on_start_command(self, intent: "Intent") -> None:
        """Called for each startService() delivery."""

    def on_bind(self, intent: "Intent") -> None:
        """Called when the first client binds."""

    def on_unbind(self) -> None:
        """Called when the last client unbinds."""

    def on_destroy(self) -> None:
        """Called before the instance is discarded."""

    def stop_self(self) -> None:
        """The service asks to stop itself (clears the started flag)."""
        if self.record is None or self.context is None:
            raise RuntimeError("service is not attached to the framework")
        self.context.stop_self(self.record)

    @property
    def class_name(self) -> str:
        """The component class name used in intents/manifests."""
        return type(self).__name__


class ServiceConnection:
    """A client's live binding to a service (the bindService token)."""

    _ids = itertools.count(1)

    def __init__(self, client_uid: int, client_pid: int, record: "ServiceRecord") -> None:
        self.connection_id = next(self._ids)
        self.client_uid = client_uid
        self.client_pid = client_pid
        self.record = record
        self.bound = True
        self.death_token: Optional["DeathToken"] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ServiceConnection(#{self.connection_id}, client_uid={self.client_uid}, "
            f"service={self.record.component_name}, bound={self.bound})"
        )


class ServiceRecord:
    """Framework-side bookkeeping for one live service instance."""

    _ids = itertools.count(1)

    def __init__(
        self,
        instance: Service,
        uid: int,
        package: str,
        component_name: str,
        create_time: float,
    ) -> None:
        self.record_id = next(self._ids)
        self.instance = instance
        self.uid = uid
        self.package = package
        self.component_name = component_name
        self.create_time = create_time
        self.state = ServiceState.CREATED
        self.started = False
        self.connections: Set[ServiceConnection] = set()
        # uid -> number of live connections from that uid, for quick
        # "who keeps this alive" queries in the battery interface.
        self.client_counts: Dict[int, int] = {}

    @property
    def should_stay_alive(self) -> bool:
        """Android's rule: alive while started OR any binding remains."""
        return self.started or bool(self.connections)

    def add_connection(self, connection: ServiceConnection) -> None:
        """Track a new binding."""
        self.connections.add(connection)
        self.client_counts[connection.client_uid] = (
            self.client_counts.get(connection.client_uid, 0) + 1
        )

    def remove_connection(self, connection: ServiceConnection) -> None:
        """Drop a binding."""
        self.connections.discard(connection)
        count = self.client_counts.get(connection.client_uid, 0)
        if count <= 1:
            self.client_counts.pop(connection.client_uid, None)
        else:
            self.client_counts[connection.client_uid] = count - 1

    def bound_by(self, uid: int) -> bool:
        """Whether ``uid`` currently holds a binding."""
        return uid in self.client_counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ServiceRecord({self.package}/{self.component_name}, uid={self.uid}, "
            f"started={self.started}, bindings={len(self.connections)})"
        )

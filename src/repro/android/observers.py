"""Framework observation interface.

E-Android's first component is "an extension of the Android framework to
record all events that potentially invoke collateral energy bugs"
(§IV).  In the simulator those extension points are expressed as an
observer interface: the ActivityManager, PowerManagerService, display
manager and settings provider publish every relevant event to registered
:class:`FrameworkObserver` instances.  Stock "Android" runs with no
observers; E-Android attaches its monitor; tests attach recorders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .activity import ActivityRecord
    from .intent import Intent
    from .service import ServiceRecord


class FrameworkObserver:
    """Base observer; every hook is a no-op so subclasses override à la carte.

    Hook arguments use uids (Android's per-app identity) because that is
    what the paper's E-Android records: "E-Android collects apps' user
    IDs and the type of operations".
    """

    # -- activities -----------------------------------------------------
    def on_activity_start(
        self,
        time: float,
        caller_uid: int,
        target_uid: int,
        record: "ActivityRecord",
        intent: "Intent",
        user_initiated: bool,
    ) -> None:
        """An activity was started (explicit or resolved implicit intent)."""

    def on_activity_move_to_front(
        self, time: float, caller_uid: int, target_uid: int, user_initiated: bool
    ) -> None:
        """An existing task was reordered to the front without a start."""

    def on_activity_finished(self, time: float, record: "ActivityRecord") -> None:
        """An activity was destroyed."""

    def on_foreground_changed(
        self,
        time: float,
        previous_uid: Optional[int],
        new_uid: Optional[int],
        cause: str,
        initiator_uid: Optional[int],
    ) -> None:
        """The foreground app changed.

        ``cause`` is one of ``start``, ``finish``, ``home``, ``back``,
        ``move_front``, ``screen_off``; ``initiator_uid`` is who drove
        the change (None for direct user input).
        """

    # -- services ---------------------------------------------------------
    def on_service_start(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """startService() reached a service."""

    def on_service_stop(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """stopService() was called."""

    def on_service_stop_self(self, time: float, record: "ServiceRecord") -> None:
        """The service stopped itself."""

    def on_service_bind(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """bindService() created a connection."""

    def on_service_unbind(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """A connection was unbound (explicitly or by client death)."""

    # -- wakelocks --------------------------------------------------------
    def on_wakelock_acquire(
        self, time: float, uid: int, lock_type: str, tag: str
    ) -> None:
        """A wakelock was acquired."""

    def on_wakelock_release(
        self, time: float, uid: int, lock_type: str, tag: str, by_death: bool
    ) -> None:
        """A wakelock was released (possibly by link-to-death)."""

    # -- screen -------------------------------------------------------------
    def on_brightness_change(
        self,
        time: float,
        caller_uid: Optional[int],
        old_level: int,
        new_level: int,
        via: str,
    ) -> None:
        """Effective brightness changed. ``via``: settings/systemui/window/auto."""

    def on_brightness_mode_change(
        self, time: float, caller_uid: Optional[int], manual: bool, via: str
    ) -> None:
        """Auto/manual brightness mode toggled."""

    def on_screen_state(self, time: float, is_on: bool) -> None:
        """The panel turned on or off."""


class ObserverRegistry:
    """Fan-out helper the framework services publish through."""

    def __init__(self) -> None:
        self._observers: List[FrameworkObserver] = []

    def register(self, observer: FrameworkObserver) -> None:
        """Attach an observer; events fan out in registration order."""
        self._observers.append(observer)

    def unregister(self, observer: FrameworkObserver) -> bool:
        """Detach an observer; returns whether it was registered."""
        try:
            self._observers.remove(observer)
            return True
        except ValueError:
            return False

    def notify(self, method: str, *args, **kwargs) -> None:
        """Invoke ``method`` on every registered observer."""
        for observer in self._observers:
            getattr(observer, method)(*args, **kwargs)

    def __len__(self) -> int:
        return len(self._observers)

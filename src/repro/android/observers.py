"""Framework observation interface (legacy) and its bus bridge.

E-Android's first component is "an extension of the Android framework to
record all events that potentially invoke collateral energy bugs"
(§IV).  Those extension points used to be expressed *only* as the
:class:`FrameworkObserver` interface below, fanned out through a
stringly-typed ``notify(method, *args)`` reflection loop.  The framework
services now publish **typed events** on the device's
:class:`~repro.telemetry.TelemetryBus` instead; this module keeps the
old observer surface alive as a compatibility shim:

* :class:`ObserverRegistry` subscribes one bridge callback to the bus's
  framework categories and replays each typed event into the matching
  ``on_*`` hook of every registered :class:`FrameworkObserver`;
* fan-out is error-isolated — a raising observer no longer prevents
  delivery to later observers, and the failure is surfaced once with
  the offending observer named.

**Deprecation path:** new code should subscribe to the bus directly
(``system.telemetry.subscribe(...)``) with typed events; direct
``FrameworkObserver`` registration remains supported for existing tools
but will not grow new hooks.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, List, Optional

from ..telemetry import (
    FRAMEWORK_CATEGORIES,
    TelemetryBus,
    TelemetrySubscriberWarning,
)
from ..telemetry.events import TelemetryEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .activity import ActivityRecord
    from .intent import Intent
    from .service import ServiceRecord


class FrameworkObserver:
    """Base observer; every hook is a no-op so subclasses override à la carte.

    Hook arguments use uids (Android's per-app identity) because that is
    what the paper's E-Android records: "E-Android collects apps' user
    IDs and the type of operations".
    """

    # -- activities -----------------------------------------------------
    def on_activity_start(
        self,
        time: float,
        caller_uid: int,
        target_uid: int,
        record: "ActivityRecord",
        intent: "Intent",
        user_initiated: bool,
    ) -> None:
        """An activity was started (explicit or resolved implicit intent)."""

    def on_activity_move_to_front(
        self, time: float, caller_uid: int, target_uid: int, user_initiated: bool
    ) -> None:
        """An existing task was reordered to the front without a start."""

    def on_activity_finished(self, time: float, record: "ActivityRecord") -> None:
        """An activity was destroyed."""

    def on_package_stopped(self, time: float, uid: int, package: str) -> None:
        """A package was force-stopped (process + all components gone)."""

    def on_foreground_changed(
        self,
        time: float,
        previous_uid: Optional[int],
        new_uid: Optional[int],
        cause: str,
        initiator_uid: Optional[int],
    ) -> None:
        """The foreground app changed.

        ``cause`` is one of ``start``, ``finish``, ``home``, ``back``,
        ``move_front``, ``screen_off``; ``initiator_uid`` is who drove
        the change (None for direct user input).
        """

    # -- services ---------------------------------------------------------
    def on_service_start(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """startService() reached a service."""

    def on_service_stop(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """stopService() was called."""

    def on_service_stop_self(self, time: float, record: "ServiceRecord") -> None:
        """The service stopped itself."""

    def on_service_bind(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """bindService() created a connection."""

    def on_service_unbind(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        """A connection was unbound (explicitly or by client death)."""

    # -- wakelocks --------------------------------------------------------
    def on_wakelock_acquire(
        self, time: float, uid: int, lock_type: str, tag: str
    ) -> None:
        """A wakelock was acquired."""

    def on_wakelock_release(
        self, time: float, uid: int, lock_type: str, tag: str, by_death: bool
    ) -> None:
        """A wakelock was released (possibly by link-to-death)."""

    # -- screen -------------------------------------------------------------
    def on_brightness_change(
        self,
        time: float,
        caller_uid: Optional[int],
        old_level: int,
        new_level: int,
        via: str,
    ) -> None:
        """Effective brightness changed. ``via``: settings/systemui/window/auto."""

    def on_brightness_mode_change(
        self, time: float, caller_uid: Optional[int], manual: bool, via: str
    ) -> None:
        """Auto/manual brightness mode toggled."""

    def on_screen_state(self, time: float, is_on: bool) -> None:
        """The panel turned on or off."""


class ObserverRegistry:
    """Compatibility shim bridging legacy observers onto the event bus.

    With a bus attached, registering the first observer subscribes one
    bridge callback per framework category; each typed event is replayed
    into the matching ``on_*`` hook of every registered observer, in
    registration order, with per-observer error isolation.  Without a
    bus (standalone use in tests/tools) only the direct :meth:`notify`
    path is available.
    """

    def __init__(self, bus: Optional[TelemetryBus] = None) -> None:
        self._bus = bus
        self._observers: List[FrameworkObserver] = []
        self._subscriptions: List[object] = []

    def register(self, observer: FrameworkObserver) -> None:
        """Attach an observer; events fan out in registration order."""
        self._observers.append(observer)
        if self._bus is not None and not self._subscriptions:
            self._subscriptions = [
                self._bus.subscribe(
                    self._bridge, category=category, name="observer-registry"
                )
                for category in FRAMEWORK_CATEGORIES
            ]

    def unregister(self, observer: FrameworkObserver) -> bool:
        """Detach an observer; returns whether it was registered."""
        try:
            self._observers.remove(observer)
        except ValueError:
            return False
        if self._bus is not None and not self._observers:
            for subscription in self._subscriptions:
                self._bus.unsubscribe(subscription)
            self._subscriptions = []
        return True

    def _bridge(self, event: TelemetryEvent) -> None:
        """Replay one typed event into every observer's legacy hook."""
        hook = event.hook
        if hook is None:
            return
        self.notify(hook, *event.hook_args())

    def notify(self, method: str, *args, **kwargs) -> None:
        """Invoke ``method`` on every registered observer, error-isolated.

        A raising observer does not prevent delivery to later observers;
        each failure is surfaced once as a
        :class:`~repro.telemetry.TelemetrySubscriberWarning` naming the
        offending observer (and recorded on the bus, when attached).
        """
        for observer in list(self._observers):
            try:
                getattr(observer, method)(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - isolation by design
                name = f"{type(observer).__name__}.{method}"
                if self._bus is not None:
                    self._bus.report_subscriber_error(name, method, exc)
                else:
                    warnings.warn(
                        f"framework observer {name!r} raised {exc!r}; "
                        "delivery to other observers continued",
                        TelemetrySubscriberWarning,
                        stacklevel=2,
                    )

    def __len__(self) -> int:
        return len(self._observers)

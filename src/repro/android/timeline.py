"""Foreground timeline.

Both PowerTutor (screen energy goes to the foreground app) and
E-Android's wakelock/interrupt trackers need to know which uid held the
foreground over any time window.  The ActivityManager appends to one
:class:`ForegroundTimeline`; consumers query intervals.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple


class ForegroundTimeline:
    """Append-only record of (time, foreground uid) changes."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._uids: List[Optional[int]] = []
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic change counter; keys the profilers' report caches."""
        return self._version

    def record(self, time: float, uid: Optional[int]) -> None:
        """Append a foreground change at ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"timeline appends must be ordered: {time!r} after {self._times[-1]!r}"
            )
        if self._times and self._times[-1] == time:
            if self._uids[-1] != uid:
                self._uids[-1] = uid
                self._version += 1
            return
        if self._uids and self._uids[-1] == uid:
            return
        self._times.append(time)
        self._uids.append(uid)
        self._version += 1

    def uid_at(self, time: float) -> Optional[int]:
        """The foreground uid at an instant (None before first record)."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return None
        return self._uids[index]

    @property
    def current_uid(self) -> Optional[int]:
        """The most recently recorded foreground uid."""
        return self._uids[-1] if self._uids else None

    def intervals(
        self, uid: int, start: float, end: float
    ) -> List[Tuple[float, float]]:
        """Sub-intervals of [start, end) during which ``uid`` was foreground."""
        if end < start:
            raise ValueError(f"window end {end!r} before start {start!r}")
        result: List[Tuple[float, float]] = []
        if not self._times:
            return result
        index = max(0, bisect.bisect_right(self._times, start) - 1)
        for i in range(index, len(self._times)):
            seg_start = max(self._times[i], start)
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else end
            seg_end = min(seg_end, end)
            if seg_end <= seg_start:
                continue
            if self._uids[i] == uid:
                result.append((seg_start, seg_end))
            if seg_end >= end:
                break
        return result

    def changes(self) -> List[Tuple[float, Optional[int]]]:
        """The raw change list (copy)."""
        return list(zip(self._times, self._uids))

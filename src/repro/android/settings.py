"""System settings provider.

Holds the global settings table (brightness level, brightness mode,
screen-off timeout) with WRITE_SETTINGS enforcement for app uids and a
change-observer interface — the hook E-Android's screen-attack tracker
listens on, with the *caller uid* attached to every change so the
accounting can tell a SystemUI (user) adjustment from a background app's
stealthy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, TYPE_CHECKING

from .errors import SecurityException
from .manifest import WRITE_SETTINGS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .package_manager import PackageManager

# Keys mirroring android.provider.Settings.System.
SCREEN_BRIGHTNESS = "screen_brightness"
SCREEN_BRIGHTNESS_MODE = "screen_brightness_mode"
SCREEN_OFF_TIMEOUT = "screen_off_timeout"

BRIGHTNESS_MODE_MANUAL = 0
BRIGHTNESS_MODE_AUTOMATIC = 1


@dataclass(frozen=True)
class SettingChange:
    """One observed settings write."""

    time: float
    caller_uid: int
    key: str
    old_value: Any
    new_value: Any


SettingObserver = Callable[[SettingChange], None]


class SettingsProvider:
    """The global settings table with permission-checked writes."""

    def __init__(
        self,
        package_manager: "PackageManager",
        clock: Callable[[], float],
    ) -> None:
        self._package_manager = package_manager
        self._clock = clock
        self._values: Dict[str, Any] = {
            SCREEN_BRIGHTNESS: 102,
            SCREEN_BRIGHTNESS_MODE: BRIGHTNESS_MODE_MANUAL,
            SCREEN_OFF_TIMEOUT: 30.0,
        }
        self._observers: List[SettingObserver] = []
        self._history: List[SettingChange] = []

    def get(self, key: str, default: Any = None) -> Any:
        """Read a setting."""
        return self._values.get(key, default)

    def put(self, caller_uid: int, key: str, value: Any) -> None:
        """Write a setting as ``caller_uid``.

        System uids bypass the permission check (SystemUI adjusting
        brightness is the user acting); app uids need WRITE_SETTINGS.
        """
        if not self._package_manager.is_system_uid(caller_uid):
            if not self._package_manager.check_permission(caller_uid, WRITE_SETTINGS):
                raise SecurityException(
                    f"uid {caller_uid} lacks {WRITE_SETTINGS} for key {key!r}"
                )
        self._apply(caller_uid, key, value)

    def put_as_system(self, key: str, value: Any) -> None:
        """Privileged write used by system services themselves."""
        self._apply(self._package_manager.system_uid, key, value)

    def add_observer(self, observer: SettingObserver) -> None:
        """Subscribe to settings changes."""
        self._observers.append(observer)

    def history(self) -> List[SettingChange]:
        """All observed changes (copy)."""
        return list(self._history)

    def _apply(self, caller_uid: int, key: str, value: Any) -> None:
        old = self._values.get(key)
        if old == value:
            return
        self._values[key] = value
        change = SettingChange(
            time=self._clock(),
            caller_uid=caller_uid,
            key=key,
            old_value=old,
            new_value=value,
        )
        self._history.append(change)
        for observer in list(self._observers):
            observer(change)

"""Exception hierarchy for the Android framework simulator."""

from __future__ import annotations


class AndroidError(Exception):
    """Base class for framework errors."""


class SecurityException(AndroidError):
    """Permission denial — mirrors android.os.SecurityException."""


class ActivityNotFoundError(AndroidError):
    """No component resolves the given intent."""


class PackageNotFoundError(AndroidError):
    """The referenced package is not installed."""


class ComponentNotFoundError(AndroidError):
    """The package exists but the component does not."""


class NotExportedError(SecurityException):
    """A caller from another app targeted a non-exported component."""


class BadStateError(AndroidError):
    """An operation was attempted in an invalid lifecycle state."""

"""PowerManagerService: wakelocks, screen timeout, and suspend.

Implements the behaviour §III-A builds the wakelock attack vector on:

* four wakelock types; the three screen types force the panel on;
* a wakelock is only force-released through *link-to-death* when the
  owning process dies — merely stopping an activity leaves it held,
  which is the no-sleep-bug gap malware #4/#6 exploit;
* without a screen wakelock, the screen times out (default 30 s) and
  the device then suspends unless a PARTIAL wakelock is held.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .errors import BadStateError, SecurityException
from .manifest import WAKE_LOCK
from ..telemetry import TelemetryBus, WakelockAcquireEvent, WakelockReleaseEvent
from .settings import SCREEN_OFF_TIMEOUT, SettingsProvider

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..power.components import HardwarePlatform
    from ..sim.event_queue import ScheduledEvent
    from ..sim.kernel import Kernel
    from ..sim.process import ProcessRecord
    from .binder import Binder, DeathToken
    from .display import DisplayManager
    from .package_manager import PackageManager

# Wakelock types (PowerManager constants).
PARTIAL_WAKE_LOCK = "PARTIAL_WAKE_LOCK"
SCREEN_DIM_WAKE_LOCK = "SCREEN_DIM_WAKE_LOCK"
SCREEN_BRIGHT_WAKE_LOCK = "SCREEN_BRIGHT_WAKE_LOCK"
FULL_WAKE_LOCK = "FULL_WAKE_LOCK"

SCREEN_LOCK_TYPES = frozenset(
    {SCREEN_DIM_WAKE_LOCK, SCREEN_BRIGHT_WAKE_LOCK, FULL_WAKE_LOCK}
)
ALL_LOCK_TYPES = SCREEN_LOCK_TYPES | {PARTIAL_WAKE_LOCK}


@dataclass
class WakeLock:
    """A held wakelock; release through :meth:`release`."""

    lock_id: int
    uid: int
    lock_type: str
    tag: str
    acquire_time: float
    held: bool = True
    _service: Optional["PowerManagerService"] = field(default=None, repr=False)
    _death_token: Optional["DeathToken"] = field(default=None, repr=False)

    def release(self) -> None:
        """Release the lock (idempotence is an error, as on Android)."""
        if self._service is None:
            raise BadStateError("wakelock not registered with PowerManagerService")
        self._service.release(self)

    @property
    def keeps_screen_on(self) -> bool:
        """Whether this lock's type forces the panel on."""
        return self.lock_type in SCREEN_LOCK_TYPES


class PowerManagerService:
    """Wakelock registry plus screen-timeout and suspend policy."""

    def __init__(
        self,
        kernel: "Kernel",
        hardware: "HardwarePlatform",
        display: "DisplayManager",
        settings: SettingsProvider,
        package_manager: "PackageManager",
        binder: "Binder",
        process_of_uid: Callable[[int], Optional["ProcessRecord"]],
        telemetry: TelemetryBus,
    ) -> None:
        self._kernel = kernel
        self._hardware = hardware
        self._display = display
        self._settings = settings
        self._package_manager = package_manager
        self._binder = binder
        self._process_of_uid = process_of_uid
        self._telemetry = telemetry
        self._lock_ids = itertools.count(1)
        self._locks: Dict[int, WakeLock] = {}
        self._timeout_event: Optional["ScheduledEvent"] = None
        self._interactive = False

    # ------------------------------------------------------------------
    # wakelocks
    # ------------------------------------------------------------------
    def acquire(self, uid: int, lock_type: str, tag: str) -> WakeLock:
        """Acquire a wakelock for ``uid`` (requires WAKE_LOCK permission)."""
        if lock_type not in ALL_LOCK_TYPES:
            raise ValueError(f"unknown wakelock type {lock_type!r}")
        if not self._package_manager.check_permission(uid, WAKE_LOCK):
            raise SecurityException(f"uid {uid} lacks {WAKE_LOCK}")
        lock = WakeLock(
            lock_id=next(self._lock_ids),
            uid=uid,
            lock_type=lock_type,
            tag=tag,
            acquire_time=self._kernel.now,
            _service=self,
        )
        self._locks[lock.lock_id] = lock
        # Link-to-death: only the process's death auto-releases the lock.
        process = self._process_of_uid(uid)
        if process is not None:
            lock._death_token = self._binder.link_to_death(
                process.pid, lambda _dead, lock=lock: self._release_by_death(lock)
            )
        self._telemetry.publish(
            WakelockAcquireEvent(
                time=self._kernel.now, uid=uid, lock_type=lock_type, tag=tag
            )
        )
        if lock.keeps_screen_on:
            self.wake_up()
            self._cancel_timeout()
            self._update_dim_state()
        elif not self._hardware.suspended:
            pass  # partial lock on an awake device changes nothing yet
        else:
            # Acquiring a partial lock from suspend is impossible in
            # practice (CPU halted) but harmless in simulation: wake.
            self._resume_cpu_only()
        return lock

    def release(self, lock: WakeLock) -> None:
        """Explicitly release a held lock."""
        if not lock.held:
            raise BadStateError(f"wakelock {lock.tag!r} is not held")
        self._finish_release(lock, by_death=False)

    def _release_by_death(self, lock: WakeLock) -> None:
        if lock.held:
            self._finish_release(lock, by_death=True)

    def _finish_release(self, lock: WakeLock, by_death: bool) -> None:
        lock.held = False
        self._locks.pop(lock.lock_id, None)
        if lock._death_token is not None and not by_death:
            self._binder.unlink_to_death(lock._death_token)
        lock._death_token = None
        self._telemetry.publish(
            WakelockReleaseEvent(
                time=self._kernel.now,
                uid=lock.uid,
                lock_type=lock.lock_type,
                tag=lock.tag,
                by_death=by_death,
            )
        )
        if not self._screen_locks() and self._interactive:
            self._restart_timeout()
        self._update_dim_state()
        if not self._partial_locks() and not self._interactive:
            self._suspend()

    def held_locks(self, uid: Optional[int] = None) -> List[WakeLock]:
        """All held locks, optionally filtered by uid."""
        return [
            lock
            for lock in self._locks.values()
            if uid is None or lock.uid == uid
        ]

    def holds_screen_lock(self, uid: int) -> bool:
        """Whether ``uid`` holds any screen-type lock."""
        return any(lock.keeps_screen_on for lock in self.held_locks(uid))

    def _screen_locks(self) -> List[WakeLock]:
        return [lock for lock in self._locks.values() if lock.keeps_screen_on]

    def _partial_locks(self) -> List[WakeLock]:
        return [
            lock
            for lock in self._locks.values()
            if lock.lock_type == PARTIAL_WAKE_LOCK
        ]

    # ------------------------------------------------------------------
    # interactivity / screen policy
    # ------------------------------------------------------------------
    @property
    def is_interactive(self) -> bool:
        """Whether the device is awake with the screen on."""
        return self._interactive

    def wake_up(self) -> None:
        """Turn the device interactive: resume CPU, light the panel."""
        if self._hardware.suspended:
            self._hardware.resume()
        if not self._interactive:
            self._interactive = True
        self._display.screen_on()
        if not self._screen_locks():
            self._restart_timeout()
        self._update_dim_state()

    def _update_dim_state(self) -> None:
        """SCREEN_DIM locks hold the panel on only at the dim level;
        any BRIGHT/FULL lock (or plain interactivity) keeps it bright."""
        screen_locks = self._screen_locks()
        only_dim = bool(screen_locks) and all(
            lock.lock_type == SCREEN_DIM_WAKE_LOCK for lock in screen_locks
        )
        if only_dim and not self._interactive_brightness_override():
            self._display.dim()
        else:
            self._display.undim()

    def _interactive_brightness_override(self) -> bool:
        # User interaction always restores full brightness; in the
        # simulator interactivity alone does not force bright when a
        # dim lock is the only thing keeping the panel alive after the
        # timeout would have fired.
        return self._timeout_event is not None

    def user_activity(self) -> None:
        """User touched the device: wake and reset the timeout."""
        self.wake_up()

    def go_to_sleep(self) -> None:
        """Screen off now; suspend unless a partial lock forbids it."""
        self._cancel_timeout()
        self._interactive = False
        self._display.screen_off()
        if not self._partial_locks():
            self._suspend()

    def screen_timeout_s(self) -> float:
        """The configured screen-off timeout."""
        return float(self._settings.get(SCREEN_OFF_TIMEOUT, 30.0))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _restart_timeout(self) -> None:
        self._cancel_timeout()
        self._timeout_event = self._kernel.call_later(
            self.screen_timeout_s(), self._on_timeout, name="screen-timeout"
        )

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self._kernel.cancel(self._timeout_event)
            self._timeout_event = None

    def _on_timeout(self) -> None:
        self._timeout_event = None
        if self._screen_locks():
            return  # a screen lock arrived meanwhile; stay on
        self.go_to_sleep()

    def _suspend(self) -> None:
        self._hardware.suspend()

    def _resume_cpu_only(self) -> None:
        self._hardware.resume()
        if not self._interactive:
            self._display.screen_off()

"""Package manager: install apps, assign uids, resolve intents, permissions.

Android gives each app a unique Linux uid — the identity every energy
profiler keys on.  App uids start at 10000 (``Process.FIRST_APPLICATION_UID``);
uids below that are system uids, which E-Android excludes from the
collateral-attack list while still logging their events (§IV-A).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple, TYPE_CHECKING

from .errors import (
    ComponentNotFoundError,
    NotExportedError,
    PackageNotFoundError,
)
from .intent import ComponentName, Intent
from .manifest import ComponentDecl, ComponentKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .app import App

FIRST_APPLICATION_UID = 10000
SYSTEM_UID = 1000


class PackageManager:
    """Installed-package registry with intent resolution."""

    def __init__(self) -> None:
        self._apps_by_package: Dict[str, "App"] = {}
        self._apps_by_uid: Dict[int, "App"] = {}
        self._app_uids = itertools.count(FIRST_APPLICATION_UID)
        self._system_uids = itertools.count(SYSTEM_UID)
        self._system_packages: set = set()

    @property
    def system_uid(self) -> int:
        """The core system uid."""
        return SYSTEM_UID

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, app: "App", system_app: bool = False) -> int:
        """Install an app, assigning a fresh uid; returns the uid."""
        package = app.package
        if package in self._apps_by_package:
            raise ValueError(f"package {package!r} already installed")
        uid = next(self._system_uids) if system_app else next(self._app_uids)
        self._apps_by_package[package] = app
        self._apps_by_uid[uid] = app
        if system_app:
            self._system_packages.add(package)
        return uid

    def uninstall(self, package: str) -> None:
        """Remove an installed package."""
        app = self.app_for_package(package)
        del self._apps_by_package[package]
        if app.uid is not None:
            self._apps_by_uid.pop(app.uid, None)
        self._system_packages.discard(package)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def is_installed(self, package: str) -> bool:
        """Whether a package is installed."""
        return package in self._apps_by_package

    def app_for_package(self, package: str) -> "App":
        """Installed app by package name."""
        try:
            return self._apps_by_package[package]
        except KeyError:
            raise PackageNotFoundError(f"package {package!r} not installed") from None

    def app_for_uid(self, uid: int) -> "App":
        """Installed app by uid."""
        try:
            return self._apps_by_uid[uid]
        except KeyError:
            raise PackageNotFoundError(f"no app with uid {uid}") from None

    def label_for_uid(self, uid: int) -> str:
        """Display label for a uid (used by the battery interfaces)."""
        app = self._apps_by_uid.get(uid)
        return app.label if app is not None else f"uid:{uid}"

    def installed_apps(self) -> List["App"]:
        """Every installed app."""
        return list(self._apps_by_package.values())

    def is_system_uid(self, uid: int) -> bool:
        """Whether a uid belongs to the system / built-in apps."""
        return uid < FIRST_APPLICATION_UID

    def is_system_package(self, package: str) -> bool:
        """Whether a package was installed as a system app."""
        return package in self._system_packages

    # ------------------------------------------------------------------
    # permissions
    # ------------------------------------------------------------------
    def check_permission(self, uid: int, permission: str) -> bool:
        """Whether the uid's manifest requests the permission.

        Install-time model (pre-Android-6 runtime permissions, matching
        the paper's Android 5.0.1): requesting is holding.  System uids
        hold everything.
        """
        if self.is_system_uid(uid):
            return True
        app = self._apps_by_uid.get(uid)
        return app is not None and app.manifest.requests_permission(permission)

    # ------------------------------------------------------------------
    # intent resolution
    # ------------------------------------------------------------------
    def resolve_component(
        self, caller_uid: int, target: ComponentName, kind: ComponentKind
    ) -> Tuple["App", ComponentDecl]:
        """Resolve an explicit component, enforcing the export rule."""
        app = self.app_for_package(target.package)
        decl = app.manifest.component(target.class_name)
        if decl is None or decl.kind != kind:
            raise ComponentNotFoundError(
                f"{target.flatten()} is not a declared {kind.value}"
            )
        caller_app = self._apps_by_uid.get(caller_uid)
        same_app = caller_app is not None and caller_app.package == target.package
        if not decl.exported and not same_app and not self.is_system_uid(caller_uid):
            raise NotExportedError(
                f"{target.flatten()} is not exported; denied for uid {caller_uid}"
            )
        return app, decl

    def query_intent_handlers(
        self, intent: Intent, kind: ComponentKind
    ) -> List[Tuple["App", ComponentDecl]]:
        """All exported components whose filters match an implicit intent."""
        matches: List[Tuple["App", ComponentDecl]] = []
        for app in self._apps_by_package.values():
            for decl in app.manifest.components_of_kind(kind):
                if decl.exported and decl.handles(intent.action, intent.categories):
                    matches.append((app, decl))
        return matches

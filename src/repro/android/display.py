"""Display manager: effective brightness policy and screen state.

Brightness on Android is resolved from three sources, in priority order:

1. the foreground window's brightness attribute (``WindowManager.
   LayoutParams.screenBrightness``) — why malware #5 must flash a
   transparent activity to make its change take effect;
2. in automatic mode, the ambient-light-driven value — app writes to the
   brightness setting are *stored but not applied* until the mode is
   switched to manual (§IV-A);
3. in manual mode, the ``screen_brightness`` setting.

Every effective-brightness change is published on the telemetry bus
with the causing uid, which is the raw material for E-Android's screen
attack tracker (Fig. 5d).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..power.components import ScreenModel
from ..telemetry import (
    BrightnessChangeEvent,
    BrightnessModeChangeEvent,
    ScreenStateEvent,
    TelemetryBus,
)
from .settings import (
    BRIGHTNESS_MODE_AUTOMATIC,
    BRIGHTNESS_MODE_MANUAL,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
    SettingChange,
    SettingsProvider,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.kernel import Kernel


class DisplayManager:
    """Owns the panel: on/off and the effective-brightness computation."""

    def __init__(
        self,
        kernel: "Kernel",
        screen: ScreenModel,
        settings: SettingsProvider,
        telemetry: TelemetryBus,
    ) -> None:
        self._kernel = kernel
        self._screen = screen
        self._settings = settings
        self._telemetry = telemetry
        self._foreground_uid: Optional[int] = None
        self._window_brightness: Dict[int, int] = {}
        # Ambient-sensor-driven level used in automatic mode.
        self._auto_brightness = 80
        settings.add_observer(self._on_setting_change)

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    @property
    def is_screen_on(self) -> bool:
        """Whether the panel is lit."""
        return self._screen.is_on

    @property
    def brightness(self) -> int:
        """Current effective brightness level."""
        return self._screen.brightness

    @property
    def is_auto_mode(self) -> bool:
        """Whether automatic brightness is enabled."""
        return (
            self._settings.get(SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_MANUAL)
            == BRIGHTNESS_MODE_AUTOMATIC
        )

    @property
    def auto_brightness(self) -> int:
        """The level the ambient sensor currently dictates."""
        return self._auto_brightness

    def window_brightness_of(self, uid: int) -> Optional[int]:
        """An app's window brightness override, if set."""
        return self._window_brightness.get(uid)

    # ------------------------------------------------------------------
    # screen power state (driven by PowerManagerService)
    # ------------------------------------------------------------------
    def screen_on(self) -> None:
        """Light the panel and apply the effective brightness."""
        if not self._screen.is_on:
            self._screen.turn_on()
            self._telemetry.publish(
                ScreenStateEvent(time=self._kernel.now, is_on=True)
            )
        self._recompute(cause_uid=None, via="screen_on")

    def screen_off(self) -> None:
        """Power the panel down."""
        if self._screen.is_on:
            self._screen.turn_off()
            self._telemetry.publish(
                ScreenStateEvent(time=self._kernel.now, is_on=False)
            )

    def dim(self) -> None:
        """Enter the dim pre-timeout state."""
        self._screen.dim()

    def undim(self) -> None:
        """Leave the dim state."""
        self._screen.undim()

    # ------------------------------------------------------------------
    # brightness inputs
    # ------------------------------------------------------------------
    def set_foreground_uid(self, uid: Optional[int]) -> None:
        """Called by the ActivityManager on every foreground change."""
        if uid == self._foreground_uid:
            return
        self._foreground_uid = uid
        self._recompute(cause_uid=uid, via="window")

    def set_window_brightness(self, uid: int, level: Optional[int]) -> None:
        """Set or clear an app's window brightness attribute."""
        if level is None:
            self._window_brightness.pop(uid, None)
        else:
            self._window_brightness[uid] = max(0, min(self._screen.max_brightness, level))
        if uid == self._foreground_uid:
            self._recompute(cause_uid=uid, via="window")

    def set_ambient_level(self, level: int) -> None:
        """Move the ambient sensor; only matters in automatic mode."""
        self._auto_brightness = max(0, min(self._screen.max_brightness, level))
        if self.is_auto_mode:
            self._recompute(cause_uid=None, via="auto")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def effective_brightness(self) -> int:
        """Resolve the brightness the panel should show right now."""
        if self._foreground_uid is not None:
            override = self._window_brightness.get(self._foreground_uid)
            if override is not None:
                return override
        if self.is_auto_mode:
            return self._auto_brightness
        return int(self._settings.get(SCREEN_BRIGHTNESS, 102))

    def _on_setting_change(self, change: SettingChange) -> None:
        if change.key == SCREEN_BRIGHTNESS_MODE:
            manual = change.new_value == BRIGHTNESS_MODE_MANUAL
            self._telemetry.publish(
                BrightnessModeChangeEvent(
                    time=change.time,
                    caller_uid=change.caller_uid,
                    manual=manual,
                    via="settings",
                )
            )
            self._recompute(cause_uid=change.caller_uid, via="settings")
        elif change.key == SCREEN_BRIGHTNESS:
            self._recompute(cause_uid=change.caller_uid, via="settings")

    def _recompute(self, cause_uid: Optional[int], via: str) -> None:
        old = self._screen.brightness
        new = self.effective_brightness()
        if new != old:
            self._screen.set_brightness(new)
            self._telemetry.publish(
                BrightnessChangeEvent(
                    time=self._kernel.now,
                    caller_uid=cause_uid,
                    old_level=old,
                    new_level=new,
                    via=via,
                )
            )

"""Android framework simulator.

Implements the subset of Android 5.0.1 the paper's attacks and defenses
live in: activities with the full lifecycle, services with the bind/
unbind liveness rule, intents (explicit and implicit with resolution),
task stacks, Binder link-to-death, wakelocks, screen/brightness policy,
the settings provider, system apps, and the SurfaceFlinger shared-memory
side channel.
"""

from .activity import Activity, ActivityRecord, ActivityState
from .activity_manager import ActivityManager
from .app import App, Context
from .binder import Binder, DeathToken
from .display import DisplayManager
from .dumpsys import dumpsys, dumpsys_activity, dumpsys_battery, dumpsys_power, dumpsys_services
from .errors import (
    ActivityNotFoundError,
    AndroidError,
    BadStateError,
    ComponentNotFoundError,
    NotExportedError,
    PackageNotFoundError,
    SecurityException,
)
from .framework import AndroidSystem
from .intent import (
    ACTION_IMAGE_CAPTURE,
    ACTION_MAIN,
    ACTION_SEND,
    ACTION_USER_PRESENT,
    ACTION_VIDEO_CAPTURE,
    ACTION_VIEW,
    CATEGORY_DEFAULT,
    CATEGORY_LAUNCHER,
    FLAG_EXCLUDE_FROM_RECENTS,
    ComponentName,
    Intent,
    explicit,
    implicit,
)
from .manifest import (
    ACCESS_FINE_LOCATION,
    CAMERA,
    INTERNET,
    RECORD_AUDIO,
    REORDER_TASKS,
    SYSTEM_ALERT_WINDOW,
    WAKE_LOCK,
    WRITE_SETTINGS,
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
    launcher_filter,
)
from .observers import FrameworkObserver, ObserverRegistry
from .package_manager import FIRST_APPLICATION_UID, PackageManager
from .power_manager import (
    FULL_WAKE_LOCK,
    PARTIAL_WAKE_LOCK,
    SCREEN_BRIGHT_WAKE_LOCK,
    SCREEN_DIM_WAKE_LOCK,
    PowerManagerService,
    WakeLock,
)
from .receiver import BroadcastReceiver
from .service import Service, ServiceConnection, ServiceRecord, ServiceState
from .settings import (
    BRIGHTNESS_MODE_AUTOMATIC,
    BRIGHTNESS_MODE_MANUAL,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
    SCREEN_OFF_TIMEOUT,
    SettingChange,
    SettingsProvider,
)
from .surfaceflinger import SurfaceFlinger
from .system_apps import LAUNCHER_PACKAGE, PHONE_PACKAGE, RESOLVER_PACKAGE, SYSTEMUI_PACKAGE
from .task_stack import TaskRecord, TaskStackSupervisor
from .timeline import ForegroundTimeline

__all__ = [
    "AndroidSystem",
    "ActivityManager",
    "Activity",
    "ActivityRecord",
    "ActivityState",
    "App",
    "Context",
    "Service",
    "ServiceRecord",
    "ServiceConnection",
    "ServiceState",
    "BroadcastReceiver",
    "Binder",
    "DeathToken",
    "DisplayManager",
    "PowerManagerService",
    "WakeLock",
    "SettingsProvider",
    "SettingChange",
    "SurfaceFlinger",
    "PackageManager",
    "TaskRecord",
    "TaskStackSupervisor",
    "ForegroundTimeline",
    "FrameworkObserver",
    "ObserverRegistry",
    "Intent",
    "ComponentName",
    "explicit",
    "implicit",
    "AndroidManifest",
    "ComponentDecl",
    "ComponentKind",
    "IntentFilterDecl",
    "launcher_filter",
    "dumpsys",
    "dumpsys_activity",
    "dumpsys_services",
    "dumpsys_power",
    "dumpsys_battery",
    "AndroidError",
    "SecurityException",
    "ActivityNotFoundError",
    "PackageNotFoundError",
    "ComponentNotFoundError",
    "NotExportedError",
    "BadStateError",
    "WAKE_LOCK",
    "WRITE_SETTINGS",
    "CAMERA",
    "INTERNET",
    "ACCESS_FINE_LOCATION",
    "RECORD_AUDIO",
    "REORDER_TASKS",
    "SYSTEM_ALERT_WINDOW",
    "PARTIAL_WAKE_LOCK",
    "SCREEN_DIM_WAKE_LOCK",
    "SCREEN_BRIGHT_WAKE_LOCK",
    "FULL_WAKE_LOCK",
    "SCREEN_BRIGHTNESS",
    "SCREEN_BRIGHTNESS_MODE",
    "SCREEN_OFF_TIMEOUT",
    "BRIGHTNESS_MODE_MANUAL",
    "BRIGHTNESS_MODE_AUTOMATIC",
    "ACTION_MAIN",
    "ACTION_VIEW",
    "ACTION_SEND",
    "ACTION_VIDEO_CAPTURE",
    "ACTION_IMAGE_CAPTURE",
    "ACTION_USER_PRESENT",
    "CATEGORY_LAUNCHER",
    "CATEGORY_DEFAULT",
    "FLAG_EXCLUDE_FROM_RECENTS",
    "FIRST_APPLICATION_UID",
    "LAUNCHER_PACKAGE",
    "PHONE_PACKAGE",
    "SYSTEMUI_PACKAGE",
    "RESOLVER_PACKAGE",
]

"""Apps and the Context API handed to their components.

An :class:`App` bundles a manifest with the Python classes implementing
its components.  The framework instantiates components on demand and
injects a :class:`Context` — the only door app code has into the system
(start/bind components, wakelocks, settings, hardware workloads), with
permission checks enforced at this boundary exactly where Android
enforces them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from .errors import ComponentNotFoundError, SecurityException
from .manifest import (
    ACCESS_FINE_LOCATION,
    CAMERA,
    AndroidManifest,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.event_queue import ScheduledEvent
    from ..sim.process import ProcessRecord
    from .activity import ActivityRecord
    from .framework import AndroidSystem
    from .intent import Intent
    from .power_manager import WakeLock
    from .service import ServiceConnection, ServiceRecord


class App:
    """One installed application: manifest + component implementations."""

    def __init__(
        self,
        manifest: AndroidManifest,
        component_classes: Optional[Dict[str, type]] = None,
    ) -> None:
        self.manifest = manifest
        self.component_classes: Dict[str, type] = dict(component_classes or {})
        self.uid: Optional[int] = None
        self.system: Optional["AndroidSystem"] = None
        self.process: Optional["ProcessRecord"] = None

    @property
    def package(self) -> str:
        """The app's package name."""
        return self.manifest.package

    @property
    def label(self) -> str:
        """Human-readable name (last package segment, title-cased)."""
        return self.package.rsplit(".", 1)[-1].capitalize()

    def component_class(self, name: str) -> type:
        """The Python class implementing a declared component."""
        try:
            return self.component_classes[name]
        except KeyError:
            raise ComponentNotFoundError(
                f"{self.package} declares no implementation for {name!r}"
            ) from None

    def register_component(self, cls: type) -> type:
        """Register (or override) a component implementation by class name."""
        self.component_classes[cls.__name__] = cls
        return cls

    def on_installed(self, system: "AndroidSystem", uid: int) -> None:
        """Framework callback when the package manager installs the app."""
        self.system = system
        self.uid = uid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"App({self.package}, uid={self.uid})"


class Context:
    """Per-component handle to framework services and hardware workloads."""

    def __init__(self, system: "AndroidSystem", app: App) -> None:
        self._system = system
        self._app = app

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def app(self) -> App:
        """The owning app."""
        return self._app

    @property
    def uid(self) -> int:
        """The owning app's uid."""
        assert self._app.uid is not None
        return self._app.uid

    @property
    def package(self) -> str:
        """The owning app's package name."""
        return self._app.package

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._system.kernel.now

    @property
    def system(self) -> "AndroidSystem":
        """The whole-device facade (tests and scenario drivers use this)."""
        return self._system

    def schedule(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> "ScheduledEvent":
        """Schedule app code to run after ``delay`` virtual seconds."""
        return self._system.kernel.call_later(delay, callback, name=name)

    # ------------------------------------------------------------------
    # component IPC
    # ------------------------------------------------------------------
    def start_activity(self, intent: "Intent") -> "ActivityRecord":
        """Start an activity (explicit or implicit intent)."""
        return self._system.am.start_activity(self.uid, intent)

    def finish_activity(self, record: "ActivityRecord") -> None:
        """Finish one of this app's activities."""
        self._system.am.finish_activity(record)

    def start_service(self, intent: "Intent") -> "ServiceRecord":
        """startService()."""
        return self._system.am.start_service(self.uid, intent)

    def stop_service(self, intent: "Intent") -> bool:
        """stopService(); returns whether a service was found."""
        return self._system.am.stop_service(self.uid, intent)

    def stop_self(self, record: "ServiceRecord") -> None:
        """stopSelf() for a service owned by this app."""
        self._system.am.stop_self(record)

    def bind_service(self, intent: "Intent") -> "ServiceConnection":
        """bindService(); the connection keeps the service alive."""
        return self._system.am.bind_service(self.uid, intent)

    def unbind_service(self, connection: "ServiceConnection") -> None:
        """unbindService()."""
        self._system.am.unbind_service(connection)

    def move_task_to_front(self, package: str) -> None:
        """Reorder another task to the front (REORDER_TASKS territory)."""
        self._system.am.move_task_to_front(self.uid, package)

    def send_broadcast(self, intent: "Intent") -> int:
        """Broadcast an intent; returns the number of receivers reached."""
        return self._system.am.send_broadcast(self.uid, intent)

    def register_receiver(
        self, action: str, callback: Callable[["Intent"], None]
    ) -> None:
        """Register a runtime broadcast receiver."""
        self._system.am.register_receiver(self.uid, action, callback)

    # ------------------------------------------------------------------
    # power & display
    # ------------------------------------------------------------------
    def acquire_wakelock(self, lock_type: str, tag: str) -> "WakeLock":
        """Acquire a wakelock (requires WAKE_LOCK permission)."""
        return self._system.power_manager.acquire(self.uid, lock_type, tag)

    def put_setting(self, key: str, value: Any) -> None:
        """Write a system setting (requires WRITE_SETTINGS for app uids)."""
        self._system.settings.put(self.uid, key, value)

    def get_setting(self, key: str, default: Any = None) -> Any:
        """Read a system setting."""
        return self._system.settings.get(key, default)

    def set_window_brightness(self, level: Optional[int]) -> None:
        """Set this app's window brightness attribute.

        Only takes effect while the app is foreground — which is why
        malware #5 needs its transparent self-close activity trick.
        """
        self._system.display.set_window_brightness(self.uid, level)

    def ui_changed(self) -> None:
        """Tell SurfaceFlinger this app's UI re-rendered."""
        self._system.surfaceflinger.invalidate()

    # ------------------------------------------------------------------
    # hardware workloads (with permission checks)
    # ------------------------------------------------------------------
    def set_cpu_load(self, fraction: float, routine: str = "main") -> None:
        """Set this app's CPU demand (fraction of one core).

        Passing a ``routine`` label splits the demand onto an eprof-style
        per-routine meter channel (``cpu:<routine>``)."""
        self._system.hardware.cpu.set_utilization(self.uid, fraction, routine=routine)

    def open_camera(self) -> None:
        """Open a camera session (requires CAMERA permission)."""
        self._check_permission(CAMERA)
        self._system.hardware.camera.open(self.uid)

    def start_recording(self) -> None:
        """Record video on the open camera session."""
        self._system.hardware.camera.start_recording()

    def stop_recording(self) -> None:
        """Stop recording, back to preview."""
        self._system.hardware.camera.stop_recording()

    def close_camera(self) -> None:
        """Release the camera."""
        self._system.hardware.camera.close()

    def start_gps(self) -> None:
        """Request location updates (requires ACCESS_FINE_LOCATION)."""
        self._check_permission(ACCESS_FINE_LOCATION)
        self._system.hardware.gps.start(self.uid)

    def stop_gps(self) -> None:
        """Stop location updates."""
        self._system.hardware.gps.stop(self.uid)

    def set_network_activity(self, level: int) -> None:
        """Set radio traffic level (RadioModel.IDLE/LOW/HIGH)."""
        self._system.hardware.radio.set_activity(self.uid, level)

    def start_audio(self) -> None:
        """Start audio playback."""
        self._system.hardware.audio.start(self.uid)

    def stop_audio(self) -> None:
        """Stop audio playback."""
        self._system.hardware.audio.stop(self.uid)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_permission(self, permission: str) -> None:
        if not self._system.package_manager.check_permission(self.uid, permission):
            raise SecurityException(
                f"{self.package} (uid {self.uid}) lacks {permission}"
            )

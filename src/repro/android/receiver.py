"""Broadcast receivers.

Manifest-declared receivers let an app run code without being open —
the paper notes malware listens for intents such as ACTION_USER_PRESENT
"to automatically launch" (§V).  App code subclasses
:class:`BroadcastReceiver` and registers the class in its manifest.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .app import Context
    from .intent import Intent


class BroadcastReceiver:
    """Base class for manifest-declared broadcast receivers."""

    def __init__(self) -> None:
        self.context: Optional["Context"] = None

    def on_receive(self, intent: "Intent") -> None:
        """Handle one delivered broadcast."""

    @property
    def class_name(self) -> str:
        """The component class name used in manifests."""
        return type(self).__name__

"""AndroidManifest model with an XML round-trip.

The manifest captures everything the paper's Google-Play census (Fig. 2)
inspects via APKTool: declared permissions, exported components, and
intent filters.  :meth:`AndroidManifest.to_xml` emits a faithful subset
of real manifest XML so the :mod:`repro.apps.apktool` inspector has
something genuine to parse, rather than peeking at Python objects.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, List, Optional, Tuple

ANDROID_NS = "http://schemas.android.com/apk/res/android"
ET.register_namespace("android", ANDROID_NS)


def _a(attr: str) -> str:
    """Clark-notation key for an android: namespaced attribute."""
    return f"{{{ANDROID_NS}}}{attr}"


# Permissions relevant to the paper's threat model (§III-B).
WAKE_LOCK = "android.permission.WAKE_LOCK"
WRITE_SETTINGS = "android.permission.WRITE_SETTINGS"
CAMERA = "android.permission.CAMERA"
INTERNET = "android.permission.INTERNET"
ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
RECORD_AUDIO = "android.permission.RECORD_AUDIO"
REORDER_TASKS = "android.permission.REORDER_TASKS"
SYSTEM_ALERT_WINDOW = "android.permission.SYSTEM_ALERT_WINDOW"


class ComponentKind(Enum):
    """The four Android component types."""

    ACTIVITY = "activity"
    SERVICE = "service"
    RECEIVER = "receiver"
    PROVIDER = "provider"


@dataclass(frozen=True)
class IntentFilterDecl:
    """A manifest ``<intent-filter>``: actions plus categories."""

    actions: FrozenSet[str] = frozenset()
    categories: FrozenSet[str] = frozenset()

    def matches(self, action: Optional[str], categories: FrozenSet[str]) -> bool:
        """Android's filter test: action must be declared; every category
        requested by the intent must be declared by the filter."""
        if action is None or action not in self.actions:
            return False
        return categories <= self.categories or not categories


@dataclass(frozen=True)
class ComponentDecl:
    """A manifest component declaration."""

    name: str
    kind: ComponentKind
    exported: bool = False
    intent_filters: Tuple[IntentFilterDecl, ...] = ()
    # Mirrors android:theme="@android:style/Theme.Translucent" — the
    # transparent-cover trick malware #4/#5 relies on.
    transparent: bool = False

    def handles(self, action: Optional[str], categories: FrozenSet[str]) -> bool:
        """Whether any of this component's filters match."""
        return any(f.matches(action, categories) for f in self.intent_filters)


@dataclass
class AndroidManifest:
    """The parsed content of one app's AndroidManifest.xml."""

    package: str
    category: str = "tools"  # Google Play category, for the Fig. 2 census
    uses_permissions: FrozenSet[str] = frozenset()
    components: Tuple[ComponentDecl, ...] = ()

    # ------------------------------------------------------------------
    # queries used by the framework and by the Fig. 2 census
    # ------------------------------------------------------------------
    def requests_permission(self, permission: str) -> bool:
        """Whether the app declares ``<uses-permission>`` for it."""
        return permission in self.uses_permissions

    def has_exported_component(self) -> bool:
        """Whether any component is reachable from other apps."""
        return any(c.exported for c in self.components)

    def component(self, name: str) -> Optional[ComponentDecl]:
        """Look up a component declaration by class name."""
        for decl in self.components:
            if decl.name == name:
                return decl
        return None

    def components_of_kind(self, kind: ComponentKind) -> List[ComponentDecl]:
        """All declared components of one kind."""
        return [c for c in self.components if c.kind == kind]

    def launcher_activity(self) -> Optional[ComponentDecl]:
        """The activity filtered on MAIN/LAUNCHER, if any."""
        from .intent import ACTION_MAIN, CATEGORY_LAUNCHER

        for decl in self.components_of_kind(ComponentKind.ACTIVITY):
            for filt in decl.intent_filters:
                if ACTION_MAIN in filt.actions and CATEGORY_LAUNCHER in filt.categories:
                    return decl
        return None

    # ------------------------------------------------------------------
    # XML round-trip (consumed by repro.apps.apktool)
    # ------------------------------------------------------------------
    def to_xml(self) -> str:
        """Serialise to (a subset of) AndroidManifest.xml."""
        root = ET.Element("manifest", {"package": self.package})
        root.set("playCategory", self.category)
        for permission in sorted(self.uses_permissions):
            ET.SubElement(root, "uses-permission", {_a("name"): permission})
        application = ET.SubElement(root, "application")
        for decl in self.components:
            attrs = {
                _a("name"): decl.name,
                _a("exported"): "true" if decl.exported else "false",
            }
            if decl.transparent:
                attrs[_a("theme")] = "@android:style/Theme.Translucent"
            element = ET.SubElement(application, decl.kind.value, attrs)
            for filt in decl.intent_filters:
                filter_el = ET.SubElement(element, "intent-filter")
                for action in sorted(filt.actions):
                    ET.SubElement(filter_el, "action", {_a("name"): action})
                for category in sorted(filt.categories):
                    ET.SubElement(filter_el, "category", {_a("name"): category})
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(xml_text: str) -> "AndroidManifest":
        """Parse a manifest serialised by :meth:`to_xml`."""
        root = ET.fromstring(xml_text)
        if root.tag != "manifest":
            raise ValueError(f"not a manifest document (root tag {root.tag!r})")
        package = root.get("package")
        if not package:
            raise ValueError("manifest missing package attribute")
        category = root.get("playCategory", "tools")
        permissions = frozenset(
            el.get(_a("name"), "") for el in root.findall("uses-permission")
        )
        components: List[ComponentDecl] = []
        application = root.find("application")
        if application is not None:
            for element in application:
                try:
                    kind = ComponentKind(element.tag)
                except ValueError:
                    continue
                filters = tuple(
                    IntentFilterDecl(
                        actions=frozenset(
                            a.get(_a("name"), "")
                            for a in filter_el.findall("action")
                        ),
                        categories=frozenset(
                            c.get(_a("name"), "")
                            for c in filter_el.findall("category")
                        ),
                    )
                    for filter_el in element.findall("intent-filter")
                )
                components.append(
                    ComponentDecl(
                        name=element.get(_a("name"), ""),
                        kind=kind,
                        exported=element.get(_a("exported")) == "true",
                        intent_filters=filters,
                        transparent="Translucent" in element.get(_a("theme"), ""),
                    )
                )
        return AndroidManifest(
            package=package,
            category=category,
            uses_permissions=permissions,
            components=tuple(components),
        )


def launcher_filter() -> IntentFilterDecl:
    """The MAIN/LAUNCHER intent filter every launchable app declares."""
    from .intent import ACTION_MAIN, CATEGORY_LAUNCHER

    return IntentFilterDecl(
        actions=frozenset({ACTION_MAIN}), categories=frozenset({CATEGORY_LAUNCHER})
    )

"""Built-in system apps: Launcher, SystemUI, and the resolver.

"In Android, the home UI is essentially the launcher app ... Another key
app is the system UI [which] allows users to customize a device's
characteristics, such as screen brightness.  The 'resolverActivity' is
used for users to select an app responding to an implicit intent.
E-Android treats these built-in apps and internal apps as system apps
and excludes them from the collateral energy attack list" (§IV-A).

They install with system uids (< 10000), which is how both E-Android's
monitor and the settings provider recognise them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .activity import Activity
from .app import App
from .intent import ACTION_MAIN, CATEGORY_HOME, CATEGORY_LAUNCHER
from .manifest import (
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
)
from .settings import (
    BRIGHTNESS_MODE_AUTOMATIC,
    BRIGHTNESS_MODE_MANUAL,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .framework import AndroidSystem

LAUNCHER_PACKAGE = "com.android.launcher"
SYSTEMUI_PACKAGE = "com.android.systemui"
RESOLVER_PACKAGE = "com.android.resolver"
PHONE_PACKAGE = "com.android.phone"


class HomeActivity(Activity):
    """The launcher's home screen; idles with negligible load."""

    def on_resume(self) -> None:
        if self.context is not None:
            self.context.ui_changed()

    def on_back_pressed(self) -> bool:
        """The home screen swallows back presses (as on real Android —
        there is nowhere further back to go)."""
        return True


class ResolverActivity(Activity):
    """Shown when several handlers match an implicit intent.

    In the simulator the resolution decision itself happens through the
    ActivityManager's resolver policy; this activity exists so the task
    stacks and SurfaceFlinger state look like the real flow.
    """

    transparent = True


def build_launcher() -> App:
    """The home/launcher system app."""
    manifest = AndroidManifest(
        package=LAUNCHER_PACKAGE,
        category="system",
        components=(
            ComponentDecl(
                name="HomeActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(
                    IntentFilterDecl(
                        actions=frozenset({ACTION_MAIN}),
                        categories=frozenset({CATEGORY_HOME, CATEGORY_LAUNCHER}),
                    ),
                ),
            ),
        ),
    )
    return App(manifest, {"HomeActivity": HomeActivity})


class IncomingCallActivity(Activity):
    """The popup a ringing phone throws over the foreground app.

    §III-A: "a foreground activity could be easily interrupted by popup
    activities, e.g., the activity invoked by a notification, an
    incoming call or an alarm" — the canonical *unintentional* trigger
    of the wakelock collateral bug.  Transparent: the app underneath is
    only paused.
    """

    transparent = True

    def on_resume(self) -> None:
        if self.context is not None:
            self.context.start_audio()  # ringtone

    def on_pause(self) -> None:
        if self.context is not None:
            self.context.stop_audio()


def build_phone() -> App:
    """The dialer/telephony system app."""
    manifest = AndroidManifest(
        package=PHONE_PACKAGE,
        category="system",
        components=(
            ComponentDecl(
                name="IncomingCallActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                transparent=True,
            ),
        ),
    )
    return App(manifest, {"IncomingCallActivity": IncomingCallActivity})


def build_systemui() -> App:
    """The status-bar/quick-settings system app."""
    manifest = AndroidManifest(package=SYSTEMUI_PACKAGE, category="system")
    return App(manifest, {})


def build_resolver() -> App:
    """The implicit-intent resolver dialog app."""
    manifest = AndroidManifest(
        package=RESOLVER_PACKAGE,
        category="system",
        components=(
            ComponentDecl(
                name="ResolverActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                transparent=True,
            ),
        ),
    )
    return App(manifest, {"ResolverActivity": ResolverActivity})


class SystemUi:
    """User-facing controls routed through the SystemUI uid.

    Calls here model the *user* adjusting the device, which E-Android's
    screen tracker treats as attack-window terminators (Fig. 5d:
    "brightness changed by system UI (i.e., operated by users)").
    """

    def __init__(self, system: "AndroidSystem", uid: int) -> None:
        self._system = system
        self._uid = uid

    @property
    def uid(self) -> int:
        """SystemUI's (system) uid."""
        return self._uid

    def user_set_brightness(self, level: int) -> None:
        """User drags the brightness slider."""
        self._system.settings.put(self._uid, SCREEN_BRIGHTNESS, int(level))

    def user_set_auto_mode(self, enabled: bool) -> None:
        """User toggles automatic brightness."""
        mode = BRIGHTNESS_MODE_AUTOMATIC if enabled else BRIGHTNESS_MODE_MANUAL
        self._system.settings.put(self._uid, SCREEN_BRIGHTNESS_MODE, mode)

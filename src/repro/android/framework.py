"""The AndroidSystem facade — one simulated device.

Wires the simulation kernel, hardware platform, and every framework
service together, installs the system apps, and exposes the operations
scenario drivers use (install apps, press buttons, unlock the screen).

Stock "Android" is an :class:`AndroidSystem` with a baseline profiler
attached; "E-Android" is the same system with the E-Android monitor
subscribed to the device's telemetry bus — mirroring the paper's design
where E-Android is a framework extension, not a separate OS.

Every observable event in the device flows through one
:class:`~repro.telemetry.TelemetryBus` (``system.telemetry``): framework
services publish typed activity/service/wakelock/screen events, the sim
kernel publishes dispatch/timer spans, and the hardware meter publishes
draw changes.  Legacy :class:`FrameworkObserver` registration still
works through the :class:`ObserverRegistry` bridge.
"""

from __future__ import annotations

from typing import List, Optional

from ..power.components import HardwarePlatform
from ..power.battery import Battery
from ..power.profiles import NEXUS4, DevicePowerProfile
from ..sim.kernel import Kernel
from ..sim.process import ProcessTable
from ..telemetry import TelemetryBus
from .activity import ActivityRecord
from .activity_manager import ActivityManager
from .app import App
from .binder import Binder
from .display import DisplayManager
from .intent import (
    ACTION_SCREEN_OFF,
    ACTION_SCREEN_ON,
    ACTION_USER_PRESENT,
    Intent,
    implicit,
)
from .observers import FrameworkObserver, ObserverRegistry
from .package_manager import PackageManager
from .power_manager import PowerManagerService
from .settings import SettingsProvider
from .surfaceflinger import SurfaceFlinger
from .system_apps import (
    LAUNCHER_PACKAGE,
    PHONE_PACKAGE,
    SystemUi,
    build_launcher,
    build_phone,
    build_resolver,
    build_systemui,
)


class AndroidSystem:
    """A complete simulated device."""

    def __init__(self, profile: DevicePowerProfile = NEXUS4) -> None:
        self.kernel = Kernel()
        self.telemetry = TelemetryBus()
        self.kernel.set_telemetry(self.telemetry)
        self.profile = profile
        self.hardware = HardwarePlatform(self.kernel, profile, telemetry=self.telemetry)
        self.battery = Battery(self.kernel, self.hardware.meter, profile.battery_capacity_j)
        self.processes = ProcessTable()
        self.binder = Binder(self.processes)
        self.observers = ObserverRegistry(self.telemetry)
        self.package_manager = PackageManager()
        self.settings = SettingsProvider(self.package_manager, lambda: self.kernel.now)
        self.display = DisplayManager(
            self.kernel, self.hardware.screen, self.settings, self.telemetry
        )
        self.am = ActivityManager(
            self.kernel,
            self.package_manager,
            self.processes,
            self.binder,
            self.display,
            self.telemetry,
        )
        self.power_manager = PowerManagerService(
            self.kernel,
            self.hardware,
            self.display,
            self.settings,
            self.package_manager,
            self.binder,
            self.am.process_of_uid,
            self.telemetry,
        )
        self.surfaceflinger = SurfaceFlinger(self.am.foreground_record)
        self.am.set_ui_invalidate(self.surfaceflinger.invalidate)

        # System apps.
        self.launcher = build_launcher()
        self.install(self.launcher, system_app=True)
        systemui_app = build_systemui()
        self.install(systemui_app, system_app=True)
        assert systemui_app.uid is not None
        self.systemui = SystemUi(self, systemui_app.uid)
        self.resolver = build_resolver()
        self.install(self.resolver, system_app=True)
        self.phone = build_phone()
        self.install(self.phone, system_app=True)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def install(self, app: App, system_app: bool = False) -> App:
        """Install an app and hand it its uid."""
        uid = self.package_manager.install(app, system_app=system_app)
        app.on_installed(self, uid)
        return app

    def install_all(self, apps: List[App]) -> None:
        """Install several apps."""
        for app in apps:
            self.install(app)

    def uninstall(self, package: str) -> None:
        """Remove a package, force-stopping anything it has running.

        Mirrors real Android: deleting an energy-hog app is the user
        action the battery interface exists to enable (§I), and it must
        tear down activities, services, bindings, and wakelocks first.
        """
        self.am.force_stop(package)
        self.package_manager.uninstall(package)

    def register_observer(self, observer: FrameworkObserver) -> None:
        """Attach a legacy framework observer via the compat bridge.

        Deprecated in favour of subscribing to ``self.telemetry``
        directly with typed events; kept for existing tools and tests.
        """
        self.observers.register(observer)

    # ------------------------------------------------------------------
    # device-level user operations
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Power on: wake the device and land on the home screen."""
        self.power_manager.wake_up()
        self.am.start_activity(
            self.package_manager.system_uid,
            Intent(component=None, action="android.intent.action.MAIN").with_component(
                _home_component()
            ),
            user_initiated=True,
        )

    def press_home(self) -> None:
        """User presses the home button."""
        self.power_manager.user_activity()
        self.am.move_task_to_front(
            self.package_manager.system_uid, LAUNCHER_PACKAGE, user_initiated=True
        )

    def press_back(self) -> None:
        """User presses the back button."""
        self.power_manager.user_activity()
        self.am.press_back()

    def tap_dialog_ok(self) -> None:
        """User taps OK on the visible dialog."""
        self.power_manager.user_activity()
        self.am.tap_dialog_ok()

    def launch_app(self, package: str) -> ActivityRecord:
        """User taps an app icon in the launcher."""
        self.power_manager.user_activity()
        app = self.package_manager.app_for_package(package)
        decl = app.manifest.launcher_activity()
        if decl is None:
            raise ValueError(f"{package} has no launcher activity")
        intent = Intent().with_component(_component(package, decl.name))
        return self.am.start_activity(
            self.package_manager.system_uid, intent, user_initiated=True
        )

    def incoming_call(self, ring_seconds: float = 10.0) -> ActivityRecord:
        """An incoming call pops its activity over the foreground app.

        The popup is transparent (the app below only pauses) and, being
        system-initiated, opens no attack link — but an app below that
        fails to release its wakelock in onPause keeps draining, the
        §III-A *unintentional* collateral case.  The call dismisses
        itself after ``ring_seconds``.
        """
        from .intent import ComponentName, Intent

        record = self.am.start_activity(
            self.package_manager.system_uid,
            Intent(component=ComponentName(PHONE_PACKAGE, "IncomingCallActivity")),
            user_initiated=False,
        )
        self.power_manager.user_activity()  # the ring lights the screen
        self.kernel.call_later(
            ring_seconds,
            lambda: self.am.finish_activity(record)
            if record.state.value != "destroyed"
            else None,
            name="call-ends",
        )
        return record

    def unlock_screen(self) -> None:
        """User wakes and unlocks the device (fires ACTION_USER_PRESENT)."""
        self.power_manager.user_activity()
        self.am.send_broadcast(
            self.package_manager.system_uid, implicit(ACTION_USER_PRESENT)
        )

    def screen_on_broadcast(self) -> None:
        """Fire ACTION_SCREEN_ON (kept separate from the power path)."""
        self.am.send_broadcast(
            self.package_manager.system_uid, implicit(ACTION_SCREEN_ON)
        )

    def screen_off_broadcast(self) -> None:
        """Fire ACTION_SCREEN_OFF."""
        self.am.send_broadcast(
            self.package_manager.system_uid, implicit(ACTION_SCREEN_OFF)
        )

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.kernel.now

    def run_for(self, seconds: float) -> None:
        """Advance virtual time."""
        self.kernel.run_for(seconds)

    def foreground_uid(self) -> Optional[int]:
        """The uid currently holding the foreground."""
        return self.am.foreground_uid()

    def foreground_package(self) -> Optional[str]:
        """The package currently holding the foreground."""
        record = self.am.foreground_record()
        return record.package if record else None

    def uid_of(self, package: str) -> int:
        """Installed package's uid."""
        app = self.package_manager.app_for_package(package)
        assert app.uid is not None
        return app.uid


def _component(package: str, class_name: str):
    from .intent import ComponentName

    return ComponentName(package, class_name)


def _home_component():
    return _component(LAUNCHER_PACKAGE, "HomeActivity")

"""The benchmark registry and suite behind ``python -m repro bench``.

* :mod:`repro.bench.registry` — named :class:`BenchSpec` probes;
* :mod:`repro.bench.benches` — the catalogue (meter queries at 1k/50k
  breakpoints, kernel dispatch, incremental reports, fig1/fig9 end to
  end, fuzz-oracle step cost, plus the machine-speed calibration);
* :mod:`repro.bench.suite` — runs a selection through the experiment
  engine, emits schema-versioned ``BENCH.json``, and gates against a
  committed baseline with calibration-normalized ratios.
"""

from .registry import (
    BENCH_REGISTRY,
    BenchMeasurement,
    BenchSpec,
    UnknownBenchError,
    available_bench_names,
    load_bench_registry,
    ordered_bench_specs,
    register_bench,
    resolve_bench_selection,
)
from .suite import (
    BENCH_SCHEMA,
    DEFAULT_MAX_REGRESS,
    SELFTEST_ENV,
    Comparison,
    GateReport,
    SuiteConfig,
    SuiteReport,
    compare_benchmarks,
    load_bench_json,
    run_suite,
    selftest_active,
    write_bench_json,
)

__all__ = [
    "BENCH_REGISTRY",
    "BENCH_SCHEMA",
    "DEFAULT_MAX_REGRESS",
    "SELFTEST_ENV",
    "BenchMeasurement",
    "BenchSpec",
    "Comparison",
    "GateReport",
    "SuiteConfig",
    "SuiteReport",
    "UnknownBenchError",
    "available_bench_names",
    "compare_benchmarks",
    "load_bench_json",
    "load_bench_registry",
    "ordered_bench_specs",
    "register_bench",
    "resolve_bench_selection",
    "run_suite",
    "selftest_active",
    "write_bench_json",
]

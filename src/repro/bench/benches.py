"""The benchmark catalogue.

Micro benchmarks probe the energy-query fast paths this PR's refactor
introduced (prefix-sum traces, memoized per-owner integration,
incremental profiler reports); macro benchmarks time paper experiments
and the fuzz harness end to end, pinning the paper's "negligible
overhead" story (Table I / Fig. 10-11) to machine-checked numbers.

Every benchmark is deterministic: fixed seeds, fixed workloads, no
wall-clock dependencies beyond the timing itself.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from .registry import BenchMeasurement, BenchSpec, register_bench

_QUERY_WINDOWS = 20  # windows per meter-query batch


def _query_windows(horizon: float, count: int = _QUERY_WINDOWS) -> List[Tuple[float, float]]:
    """Deterministic (start, end) windows spread over [0, horizon)."""
    windows = []
    for i in range(count):
        start = (i * 37 % 101) / 101.0 * horizon * 0.8
        end = start + (i * 53 % 89 + 1) / 89.0 * (horizon - start)
        windows.append((start, end))
    return windows


def _build_trace(breakpoints: int):
    """A single channel with ``breakpoints`` draw changes."""
    from ..power.trace import PowerTrace

    trace = PowerTrace()
    for i in range(breakpoints):
        trace.append(float(i), float((i * 7919) % 1000 + 1))
    return trace


def _bench_meter_query(breakpoints: int, repeats: int) -> BenchMeasurement:
    """Time a batch of window-energy queries: prefix-sum vs naive walk."""
    trace = _build_trace(breakpoints)
    windows = _query_windows(float(breakpoints))
    times: List[float] = []
    naive_times: List[float] = []
    fast_total = naive_total = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        fast_total = sum(trace.energy_j(s, e) for s, e in windows)
        times.append(time.perf_counter() - started)
        started = time.perf_counter()
        naive_total = sum(trace.naive_energy_j(s, e) for s, e in windows)
        naive_times.append(time.perf_counter() - started)
    median_fast = sorted(times)[len(times) // 2]
    median_naive = sorted(naive_times)[len(naive_times) // 2]
    return BenchMeasurement(
        times_s=times,
        metrics={
            "breakpoints": breakpoints,
            "queries": len(windows),
            "naive_median_s": median_naive,
            "speedup_vs_naive": (
                median_naive / median_fast if median_fast > 0 else float("inf")
            ),
            "energy_delta_j": abs(fast_total - naive_total),
        },
    )


def bench_meter_query_1k(repeats: int) -> BenchMeasurement:
    return _bench_meter_query(1_000, repeats)


def bench_meter_query_50k(repeats: int) -> BenchMeasurement:
    return _bench_meter_query(50_000, repeats)


def bench_meter_by_owner(repeats: int) -> BenchMeasurement:
    """Repeated per-owner reports on a many-channel meter (memo path)."""
    from ..power.meter import EnergyMeter
    from ..sim.kernel import Kernel

    kernel = Kernel()
    meter = EnergyMeter(kernel)
    for step in range(200):
        for owner in range(30):
            meter.set_draw(owner, "cpu" if step % 2 else "radio",
                           float((owner * step) % 500 + 1))
        kernel.run_for(1.0)
    end = kernel.now
    times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(50):
            meter.energy_by_owner(0.0, end)
            meter.total_energy_j(0.0, end)
        times.append(time.perf_counter() - started)
    return BenchMeasurement(
        times_s=times,
        metrics={
            "owners": 30,
            "channels": len(meter.channels()),
            "query_cache": dict(meter.query_cache_stats),
        },
    )


def bench_kernel_dispatch(repeats: int) -> BenchMeasurement:
    """Raw event-queue throughput: schedule + dispatch a timer storm."""
    from ..sim.kernel import Kernel

    events = 20_000
    times: List[float] = []
    for _ in range(repeats):
        kernel = Kernel()
        counter = [0]

        def tick() -> None:
            counter[0] += 1

        started = time.perf_counter()
        for i in range(events):
            kernel.call_later(float(i % 997) / 10.0, tick)
        kernel.run_for(120.0)
        times.append(time.perf_counter() - started)
        assert counter[0] == events
    return BenchMeasurement(times_s=times, metrics={"events": events})


def bench_report_incremental(repeats: int) -> BenchMeasurement:
    """Profiler snapshots on a live attack device (cached + dirtied)."""
    from ..accounting import BatteryStats, PowerTutor
    from ..workloads import ALL_ATTACKS

    run = ALL_ATTACKS["attack1"](60.0)
    battery_stats = BatteryStats(run.system)
    powertutor = PowerTutor(run.system)
    times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(40):
            run.eandroid.report(run.start, run.end)
            battery_stats.report(run.start, run.end)
            powertutor.report(run.start, run.end)
        times.append(time.perf_counter() - started)
    meter = run.system.hardware.meter
    return BenchMeasurement(
        times_s=times,
        metrics={
            "reports_per_repeat": 120,
            "meter_cache": dict(meter.query_cache_stats),
        },
    )


def _bench_experiment(name: str, repeats: int, **params: Any) -> BenchMeasurement:
    """Time one registered experiment end to end (fresh device each run)."""
    from ..experiments.registry import get_spec, load_registry

    load_registry()
    spec = get_spec(name)
    times: List[float] = []
    claim_holds = True
    for _ in range(repeats):
        started = time.perf_counter()
        result = spec.run(**params)
        times.append(time.perf_counter() - started)
        claim_holds = claim_holds and bool(result.claim_holds)
    return BenchMeasurement(
        times_s=times, metrics={"experiment": name, "claim_holds": claim_holds}
    )


def bench_fig1_end_to_end(repeats: int) -> BenchMeasurement:
    return _bench_experiment("fig1", repeats)


def bench_fig9_end_to_end(repeats: int) -> BenchMeasurement:
    return _bench_experiment("fig9", repeats)


def bench_fuzz_oracle_step(repeats: int) -> BenchMeasurement:
    """Per-op cost of the conformance harness (step oracles every op)."""
    from ..check.generator import generate_scenario
    from ..check.runner import run_scenario

    scenario = generate_scenario(1234, ops=30)
    times: List[float] = []
    passed = True
    for _ in range(repeats):
        started = time.perf_counter()
        report = run_scenario(scenario, stride=1, metamorphic=False)
        times.append(time.perf_counter() - started)
        passed = passed and report.passed
    ops = len(scenario.ops)
    median = sorted(times)[len(times) // 2]
    return BenchMeasurement(
        times_s=times,
        metrics={
            "ops": ops,
            "passed": passed,
            "ops_per_s": ops / median if median > 0 else float("inf"),
        },
    )


def _build_serve_service():
    """One in-process query service over a captured attack trace."""
    from ..offline import capture_trace
    from ..serve import ProfilingService, ServiceClient, ServiceConfig
    from ..workloads import ALL_ATTACKS

    run = ALL_ATTACKS["attack1"](60.0)
    service = ProfilingService(ServiceConfig(workers=1, telemetry=False))
    service.ingest_trace("bench", capture_trace(run.system, run.eandroid), "bench")
    return service, ServiceClient(service)


def _serve_query_mix(client, count: int = 150):
    """A deterministic mixed-backend query batch against one session."""
    from ..reports import BACKENDS

    windows = _query_windows(60.0, count=(count + len(BACKENDS) - 1) // len(BACKENDS))
    queries = []
    for start, end in windows:
        for backend in BACKENDS:
            queries.extend(client.build("bench", backend, start=start, end=end))
    return queries[:count]


def bench_serve_throughput(repeats: int) -> BenchMeasurement:
    """Batch query throughput through the service (warm LRU after rep 1)."""
    service, client = _build_serve_service()
    queries = _serve_query_mix(client)
    times: List[float] = []
    answered = 0
    for _ in range(repeats):
        started = time.perf_counter()
        responses = service.serve_batch(queries)
        times.append(time.perf_counter() - started)
        answered = sum(1 for r in responses if r.ok)
    median = sorted(times)[len(times) // 2]
    return BenchMeasurement(
        times_s=times,
        metrics={
            "queries": len(queries),
            "answered": answered,
            "qps": len(queries) / median if median > 0 else float("inf"),
            "cache_hit_rate": service.cache.hit_rate,
            "shed": service.stats.shed,
        },
    )


def bench_serve_latency(repeats: int) -> BenchMeasurement:
    """Per-query submit latency: cold (LRU cleared) vs warm (all hits)."""
    service, client = _build_serve_service()
    queries = _serve_query_mix(client, count=50)
    times: List[float] = []
    warm_times: List[float] = []
    for _ in range(repeats):
        service.cache.clear()
        started = time.perf_counter()
        for query in queries:
            service.submit(query)
        times.append(time.perf_counter() - started)
        started = time.perf_counter()
        for query in queries:
            service.submit(query)
        warm_times.append(time.perf_counter() - started)
    median_cold = sorted(times)[len(times) // 2]
    median_warm = sorted(warm_times)[len(warm_times) // 2]
    per_query = len(queries) or 1
    return BenchMeasurement(
        times_s=times,
        metrics={
            "queries": per_query,
            "cold_us_per_query": median_cold / per_query * 1e6,
            "warm_us_per_query": median_warm / per_query * 1e6,
            "warm_speedup": (
                median_cold / median_warm if median_warm > 0 else float("inf")
            ),
        },
    )


def bench_serve_net_throughput(repeats: int) -> BenchMeasurement:
    """Concurrent-client query throughput through the TCP front-end."""
    import asyncio

    from ..serve import AsyncServiceClient, NetConfig, NetServer

    service, client = _build_serve_service()
    queries = _serve_query_mix(client, count=100)
    clients = 4

    async def one_pass() -> int:
        server = NetServer(service, NetConfig(pool_workers=2))
        await server.start()
        host, port = server.address
        try:

            async def drive() -> int:
                async with AsyncServiceClient(host, port) as conn:
                    responses = await conn.submit_all(queries)
                return sum(1 for r in responses if r.ok)

            answered = sum(await asyncio.gather(*(drive() for _ in range(clients))))
        finally:
            await server.shutdown()
        return answered

    times: List[float] = []
    answered = 0
    for _ in range(repeats):
        started = time.perf_counter()
        answered = asyncio.run(one_pass())
        times.append(time.perf_counter() - started)
    median = sorted(times)[len(times) // 2]
    total = clients * len(queries)
    return BenchMeasurement(
        times_s=times,
        metrics={
            "clients": clients,
            "queries": total,
            "answered": answered,
            "qps": total / median if median > 0 else float("inf"),
        },
    )


def bench_serve_net_latency(repeats: int) -> BenchMeasurement:
    """Single-client round-trip latency over localhost TCP (warm LRU)."""
    import asyncio

    from ..serve import AsyncServiceClient, NetConfig, NetServer

    service, client = _build_serve_service()
    queries = _serve_query_mix(client, count=50)

    async def one_pass() -> float:
        server = NetServer(service, NetConfig(pool_workers=1))
        await server.start()
        host, port = server.address
        try:
            async with AsyncServiceClient(host, port) as conn:
                for query in queries:  # warm the LRU once
                    await conn.submit(query)
                started = time.perf_counter()
                for query in queries:
                    await conn.submit(query)
                elapsed = time.perf_counter() - started
        finally:
            await server.shutdown()
        return elapsed

    times: List[float] = []
    for _ in range(repeats):
        times.append(asyncio.run(one_pass()))
    median = sorted(times)[len(times) // 2]
    per_query = len(queries) or 1
    return BenchMeasurement(
        times_s=times,
        metrics={
            "queries": per_query,
            "warm_us_per_query": median / per_query * 1e6,
        },
    )


def _build_device_trace(channels: int = 8, breakpoints: int = 5_000):
    """A deterministic many-channel DeviceTrace for codec benchmarks."""
    from ..offline.trace import ChannelTrace, DeviceTrace

    trace = DeviceTrace(
        captured_at=breakpoints * 0.01,
        battery_capacity_j=40_000.0,
        apps={10_000 + c: f"bench.app{c}" for c in range(channels)},
        system_uids=[1000],
        foreground=[(0.0, 10_000)],
    )
    for c in range(channels):
        trace.channels.append(
            ChannelTrace(
                owner=10_000 + c,
                component="cpu" if c % 2 else "radio",
                breakpoints=[
                    (i * 0.01, float((i * 7919 + c) % 1000 + 1) / 1000.0)
                    for i in range(breakpoints)
                ],
            )
        )
    return trace


def bench_store_encode(repeats: int) -> BenchMeasurement:
    """Binary trace-bin encode vs the JSON path, on a 40k-breakpoint trace."""
    from ..store import get_codec

    trace = _build_device_trace()
    bin_codec = get_codec("trace-bin")
    json_codec = get_codec("trace-json")
    times: List[float] = []
    json_times: List[float] = []
    blob = json_blob = b""
    for _ in range(repeats):
        started = time.perf_counter()
        blob = bin_codec.encode(trace)
        times.append(time.perf_counter() - started)
        started = time.perf_counter()
        json_blob = json_codec.encode(trace)
        json_times.append(time.perf_counter() - started)
    breakpoints = sum(len(ch.breakpoints) for ch in trace.channels)
    return BenchMeasurement(
        times_s=times,
        metrics={
            "breakpoints": breakpoints,
            "binary_bytes": len(blob),
            "json_bytes": len(json_blob),
            "compaction_ratio": len(json_blob) / len(blob) if blob else 0.0,
            "json_encode_median_s": sorted(json_times)[len(json_times) // 2],
        },
    )


def bench_store_decode(repeats: int) -> BenchMeasurement:
    """Full binary decode vs JSON parse, plus the lazy windowed path."""
    from ..store import LazyBinaryTrace, get_codec

    trace = _build_device_trace()
    blob = get_codec("trace-bin").encode(trace)
    json_blob = get_codec("trace-json").encode(trace)
    owner, component = trace.channels[0].owner, trace.channels[0].component
    times: List[float] = []
    json_times: List[float] = []
    lazy_times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        decoded = get_codec("trace-bin").decode(blob)
        times.append(time.perf_counter() - started)
        started = time.perf_counter()
        get_codec("trace-json").decode(json_blob)
        json_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        lazy = LazyBinaryTrace(blob)
        window = lazy.breakpoints(owner, component, start=10.0, end=20.0)
        lazy_times.append(time.perf_counter() - started)
        assert len(decoded.channels) == len(trace.channels)
        assert window
    median_full = sorted(times)[len(times) // 2]
    median_lazy = sorted(lazy_times)[len(lazy_times) // 2]
    return BenchMeasurement(
        times_s=times,
        metrics={
            "binary_bytes": len(blob),
            "json_decode_median_s": sorted(json_times)[len(json_times) // 2],
            "lazy_window_median_s": median_lazy,
            "lazy_window_speedup": (
                median_full / median_lazy if median_lazy > 0 else float("inf")
            ),
        },
    )


def bench_serve_cold_ingest(repeats: int) -> BenchMeasurement:
    """Cold corpus re-ingest: digest-memoized replay vs re-simulation.

    Each repeat uses a fresh artifact store: the first
    ``trace_from_document`` call replays the scenario on a simulated
    device and captures the trace into the store; the second call loads
    the memoized ``trace-bin`` artifact instead.  ``times_s`` is the
    memoized path (what a warm store's cold start costs); the
    re-simulation medians and the speedup land in ``metrics``.
    """
    import tempfile

    from ..check.generator import generate_scenario
    from ..serve import trace_from_document
    from ..store import ArtifactStore
    from ..store.codecs import CORPUS_KIND, CORPUS_SCHEMA

    scenario = generate_scenario(4321, ops=60)
    document = {
        "schema": CORPUS_SCHEMA,
        "kind": CORPUS_KIND,
        "oracles": ["bench"],
        "violations": [],
        "original_ops": len(scenario.ops),
        "shrunk_ops": len(scenario.ops),
        "scenario": scenario.to_dict(),
    }
    times: List[float] = []
    resim_times: List[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        for index in range(repeats):
            store = ArtifactStore(f"{tmp}/store-{index}")
            started = time.perf_counter()
            cold = trace_from_document(document, store=store)
            resim_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            warm = trace_from_document(document, store=store)
            times.append(time.perf_counter() - started)
            assert len(warm.channels) == len(cold.channels)
    median_memo = sorted(times)[len(times) // 2]
    median_resim = sorted(resim_times)[len(resim_times) // 2]
    return BenchMeasurement(
        times_s=times,
        metrics={
            "scenario_ops": len(scenario.ops),
            "resimulate_median_s": median_resim,
            "memoized_speedup": (
                median_resim / median_memo if median_memo > 0 else float("inf")
            ),
        },
    )


def _build_aggregate_fleet(sessions: int = 8):
    """A deterministic multi-session fleet for aggregation benchmarks."""
    from ..offline import capture_trace
    from ..serve import ProfilingService, ServiceConfig
    from ..workloads import ALL_ATTACKS

    names = sorted(ALL_ATTACKS)
    service = ProfilingService(ServiceConfig(workers=1, telemetry=False))
    for index in range(sessions):
        run = ALL_ATTACKS[names[index % len(names)]](30.0)
        service.ingest_trace(
            f"fleet-{index:02d}", capture_trace(run.system, run.eandroid), "bench"
        )
    return service


def bench_aggregate_scatter(repeats: int) -> BenchMeasurement:
    """Full scatter-gather aggregates over an 8-session fleet (no memo)."""
    from ..aggregate import AggregateRequest

    service = _build_aggregate_fleet()
    requests = [
        AggregateRequest(backend="eandroid", op="sum", group_by="owner"),
        AggregateRequest(backend="eandroid", op="topk", group_by="category", k=5),
        AggregateRequest(backend="energy", op="mean", group_by="mechanism"),
    ]
    times: List[float] = []
    answered = 0
    for _ in range(repeats):
        started = time.perf_counter()
        answered = sum(1 for req in requests if service.aggregate(req).ok)
        times.append(time.perf_counter() - started)
    median = sorted(times)[len(times) // 2]
    per_session = len(requests) * len(service.sessions)
    return BenchMeasurement(
        times_s=times,
        metrics={
            "requests": len(requests),
            "sessions": len(service.sessions),
            "answered": answered,
            "partials_per_s": per_session / median if median > 0 else float("inf"),
        },
    )


def bench_aggregate_merge(repeats: int) -> BenchMeasurement:
    """Pure gather-step merge throughput over synthetic partials."""
    from ..aggregate import AggregateRequest, GroupedPartial, merge_partials

    request = AggregateRequest(backend="energy", op="sum", group_by="owner")
    partials = [
        GroupedPartial.for_session(
            f"fleet-{index:03d}",
            {f"com.play.cat{g % 12}.app{g}": float((index * 31 + g) % 97) for g in range(40)},
        )
        for index in range(64)
    ]
    times: List[float] = []
    groups = 0
    for _ in range(repeats):
        started = time.perf_counter()
        merged = merge_partials(partials, request)
        result = merged.finalize(request)
        times.append(time.perf_counter() - started)
        groups = result["group_count"]
    median = sorted(times)[len(times) // 2]
    return BenchMeasurement(
        times_s=times,
        metrics={
            "partials": len(partials),
            "groups": groups,
            "merges_per_s": len(partials) / median if median > 0 else float("inf"),
        },
    )


def bench_calibration(repeats: int) -> BenchMeasurement:
    """Fixed pure-python workload measuring machine speed.

    The regression gate divides every benchmark's median by this run's
    calibration median before comparing against the committed baseline,
    so a slower/faster CI runner shifts both sides equally instead of
    tripping (or masking) the gate.
    """
    times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        acc = 0
        for i in range(400_000):
            acc = (acc + i * i) % 1_000_003
        times.append(time.perf_counter() - started)
        assert acc >= 0
    return BenchMeasurement(times_s=times, metrics={})


CALIBRATION_BENCH = "calibration"

for _order, _spec in enumerate(
    [
        BenchSpec(
            name=CALIBRATION_BENCH,
            runner=bench_calibration,
            kind="calibration",
            description="fixed workload normalizing machine speed",
        ),
        BenchSpec(
            name="meter_query_1k",
            runner=bench_meter_query_1k,
            kind="micro",
            description="window energy queries, 1k-breakpoint trace",
        ),
        BenchSpec(
            name="meter_query_50k",
            runner=bench_meter_query_50k,
            kind="macro",
            description="window energy queries, 50k-breakpoint trace",
        ),
        BenchSpec(
            name="meter_by_owner",
            runner=bench_meter_by_owner,
            kind="micro",
            description="repeated per-owner energy reports (memoized path)",
        ),
        BenchSpec(
            name="kernel_dispatch",
            runner=bench_kernel_dispatch,
            kind="micro",
            description="event-queue schedule + dispatch throughput",
        ),
        BenchSpec(
            name="report_incremental",
            runner=bench_report_incremental,
            kind="micro",
            description="profiler report snapshots on a live attack device",
        ),
        BenchSpec(
            name="fig1_end_to_end",
            runner=bench_fig1_end_to_end,
            kind="macro",
            description="Fig. 1 experiment, fresh device each repeat",
        ),
        BenchSpec(
            name="fig9_end_to_end",
            runner=bench_fig9_end_to_end,
            kind="macro",
            description="Fig. 9 experiment, fresh device each repeat",
        ),
        BenchSpec(
            name="fuzz_oracle_step",
            runner=bench_fuzz_oracle_step,
            kind="macro",
            description="conformance scenario with step oracles every op",
        ),
        BenchSpec(
            name="serve_throughput",
            runner=bench_serve_throughput,
            kind="macro",
            description="mixed-backend query batches through the service",
        ),
        BenchSpec(
            name="serve_latency",
            runner=bench_serve_latency,
            kind="micro",
            description="per-query serve latency, cold vs warm result LRU",
        ),
        BenchSpec(
            name="serve_net_throughput",
            runner=bench_serve_net_throughput,
            kind="macro",
            description="4 concurrent TCP clients querying the net front-end",
        ),
        BenchSpec(
            name="serve_net_latency",
            runner=bench_serve_net_latency,
            kind="micro",
            description="single-client TCP round-trip latency, warm LRU",
        ),
        BenchSpec(
            name="store_encode",
            runner=bench_store_encode,
            kind="micro",
            description="trace-bin encode of a captured attack trace",
        ),
        BenchSpec(
            name="store_decode",
            runner=bench_store_decode,
            kind="micro",
            description="trace-bin full decode + lazy windowed channel read",
        ),
        BenchSpec(
            name="serve_cold_ingest",
            runner=bench_serve_cold_ingest,
            kind="macro",
            description="corpus re-ingest via digest-memoized replay",
        ),
        BenchSpec(
            name="aggregate_scatter",
            runner=bench_aggregate_scatter,
            kind="macro",
            description="scatter-gather fleet aggregates, 8-session fleet",
        ),
        BenchSpec(
            name="aggregate_merge",
            runner=bench_aggregate_merge,
            kind="micro",
            description="gather-step partial merges, 64 synthetic partials",
        ),
    ]
):
    register_bench(
        BenchSpec(
            name=_spec.name,
            runner=_spec.runner,
            kind=_spec.kind,
            description=_spec.description,
            repeats=_spec.repeats,
            order=_order,
        )
    )

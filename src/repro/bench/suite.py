"""The benchmark suite driver behind ``python -m repro bench``.

Runs a selection of registered benchmarks through the parallel
experiment engine (one ``bench`` job each, caching off — a benchmark's
value *is* its fresh samples), reduces every benchmark's wall-clock
samples to median/p95, and emits the schema-versioned ``BENCH.json``
document the CI perf gate consumes.

Regression gating is **calibration-normalized**: every benchmark's
median is divided by its own run's ``calibration`` median (a fixed
pure-python workload) before comparing against the committed baseline.
A uniformly slower or faster CI runner shifts numerator and denominator
together, so the committed baseline stays portable across machines and
only *relative* regressions — the fast paths actually getting slower —
trip the gate.

Setting ``REPRO_BENCH_SELFTEST=1`` doubles every measured sample
*except* calibration's, simulating a uniform 2x code regression.  CI
runs the gate once normally (must pass) and once under the selftest
(must fail), proving the gate can actually catch a regression.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .registry import CALIBRATION_KIND, resolve_bench_selection

BENCH_SCHEMA = 1
BENCH_KIND = "repro-bench"
SELFTEST_ENV = "REPRO_BENCH_SELFTEST"
SELFTEST_FACTOR = 2.0
CALIBRATION_NAME = "calibration"
DEFAULT_MAX_REGRESS = 1.25


def selftest_active() -> bool:
    """Whether the artificial-regression self-check is switched on."""
    return os.environ.get(SELFTEST_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class SuiteConfig:
    """One ``repro bench`` invocation's knobs."""

    names: Sequence[str] = ()
    repeats: Optional[int] = None  # None = each spec's default
    parallel: int = 1

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (recorded in BENCH.json)."""
        return {
            "names": list(self.names),
            "repeats": self.repeats,
            "parallel": self.parallel,
            "selftest": selftest_active(),
        }


@dataclass
class BenchResult:
    """One benchmark's reduced statistics."""

    name: str
    kind: str
    times_s: List[float]
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the benchmark produced samples."""
        return self.error is None and bool(self.times_s)

    @property
    def median_s(self) -> float:
        """Median wall-clock sample."""
        return _median(self.times_s)

    @property
    def p95_s(self) -> float:
        """95th-percentile wall-clock sample (nearest-rank)."""
        return _percentile(self.times_s, 0.95)

    def to_dict(self) -> Dict[str, Any]:
        """The BENCH.json per-benchmark record."""
        return {
            "kind": self.kind,
            "repeats": len(self.times_s),
            "median_s": self.median_s,
            "p95_s": self.p95_s,
            "min_s": min(self.times_s) if self.times_s else 0.0,
            "mean_s": (
                sum(self.times_s) / len(self.times_s) if self.times_s else 0.0
            ),
            "times_s": list(self.times_s),
            "metrics": dict(self.metrics),
            "error": self.error,
        }


@dataclass
class SuiteReport:
    """Everything one suite run produced."""

    config: SuiteConfig
    results: List[BenchResult]
    wall_time_s: float = 0.0

    @property
    def passed(self) -> bool:
        """True when every benchmark ran to completion."""
        return all(result.ok for result in self.results)

    @property
    def calibration_s(self) -> float:
        """This run's machine-speed yardstick (0.0 if not measured)."""
        for result in self.results:
            if result.name == CALIBRATION_NAME and result.ok:
                return result.median_s
        return 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The full BENCH.json document."""
        return {
            "schema": BENCH_SCHEMA,
            "kind": BENCH_KIND,
            "config": self.config.as_dict(),
            "calibration_s": self.calibration_s,
            "benchmarks": {r.name: r.to_dict() for r in self.results},
            "wall_time_s": self.wall_time_s,
        }

    def render_text(self) -> str:
        """Human summary for the CLI."""
        lines = [f"{'benchmark':<22} {'kind':<12} {'median':>12} {'p95':>12}"]
        for result in self.results:
            if not result.ok:
                lines.append(f"{result.name:<22} {result.kind:<12}       FAILED")
                continue
            lines.append(
                f"{result.name:<22} {result.kind:<12} "
                f"{result.median_s * 1000.0:>10.3f}ms "
                f"{result.p95_s * 1000.0:>10.3f}ms"
            )
            speedup = result.metrics.get("speedup_vs_naive")
            if speedup is not None:
                lines.append(f"{'':<22} {'':<12}   speedup vs naive: {speedup:.1f}x")
        if selftest_active():
            lines.append(
                f"[selftest] {SELFTEST_ENV}=1: samples inflated "
                f"{SELFTEST_FACTOR}x (calibration excluded)"
            )
        lines.append(f"wall time {self.wall_time_s:.2f}s")
        return "\n".join(lines)


def run_suite(config: SuiteConfig) -> SuiteReport:
    """Run the selected benchmarks (always including calibration)."""
    from ..exec import EngineConfig, ExperimentEngine

    started = time.perf_counter()
    specs = resolve_bench_selection(list(config.names) or None)
    if all(spec.kind != CALIBRATION_KIND for spec in specs):
        specs = resolve_bench_selection([CALIBRATION_NAME]) + specs

    engine = ExperimentEngine(
        EngineConfig(parallel=config.parallel, use_cache=False)
    )
    run = engine.run(
        [
            ("bench", {"name": spec.name, "repeats": config.repeats})
            for spec in specs
        ]
    )

    inflate = selftest_active()
    results: List[BenchResult] = []
    for spec, job in zip(specs, run.results):
        metrics = job.outcome.metrics
        if job.error is not None or "times_s" not in metrics:
            results.append(
                BenchResult(
                    name=spec.name,
                    kind=spec.kind,
                    times_s=[],
                    error=job.error or "benchmark produced no samples",
                )
            )
            continue
        times = [float(t) for t in metrics["times_s"]]
        if inflate and spec.kind != CALIBRATION_KIND:
            times = [t * SELFTEST_FACTOR for t in times]
        results.append(
            BenchResult(
                name=spec.name,
                kind=spec.kind,
                times_s=times,
                metrics=dict(metrics.get("bench_metrics", {})),
            )
        )
    return SuiteReport(
        config=config,
        results=results,
        wall_time_s=time.perf_counter() - started,
    )


def write_bench_json(report: SuiteReport, path: Path) -> Path:
    """Write the BENCH.json document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_bench_json(path: Path) -> Dict[str, Any]:
    """Parse one BENCH.json document (validating the schema)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("kind") != BENCH_KIND:
        raise ValueError(f"{path} is not a repro-bench document")
    if document.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: unsupported bench schema")
    return document


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------
@dataclass
class Comparison:
    """One benchmark's current-vs-baseline verdict."""

    name: str
    baseline_norm: float  # baseline median / baseline calibration
    current_norm: float  # current median / current calibration
    ratio: float  # current_norm / baseline_norm
    regressed: bool
    note: str = ""

    def render_line(self) -> str:
        """One gate-report line."""
        status = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name:<22} ratio {self.ratio:>6.2f}x "
            f"(norm {self.baseline_norm:.4f} -> {self.current_norm:.4f})  "
            f"{status}{'  ' + self.note if self.note else ''}"
        )


@dataclass
class GateReport:
    """The regression gate's full verdict."""

    comparisons: List[Comparison]
    max_regress: float
    skipped: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Comparison]:
        """Comparisons that exceeded the threshold."""
        return [c for c in self.comparisons if c.regressed]

    @property
    def passed(self) -> bool:
        """True when nothing regressed."""
        return not self.regressions

    def render_text(self) -> str:
        """Human summary for the CLI."""
        lines = [
            f"perf gate: max allowed calibration-normalized slowdown "
            f"{self.max_regress:.2f}x"
        ]
        lines.extend(c.render_line() for c in self.comparisons)
        for name in self.skipped:
            lines.append(f"{name:<22} skipped (missing on one side)")
        lines.append(
            f"{len(self.comparisons) - len(self.regressions)}"
            f"/{len(self.comparisons)} within budget"
        )
        if self.regressions:
            lines.append(
                "REGRESSION: " + ", ".join(c.name for c in self.regressions)
            )
        return "\n".join(lines)


def compare_benchmarks(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regress: float = DEFAULT_MAX_REGRESS,
) -> GateReport:
    """Gate a current BENCH.json against a baseline one.

    Benchmarks present on only one side are listed as skipped, not
    failed — the gate must stay green while the registry grows.
    Calibration itself is never compared (it is the denominator).
    """
    current_benches = current.get("benchmarks", {})
    baseline_benches = baseline.get("benchmarks", {})
    current_cal = _calibration_stat(current)
    baseline_cal = _calibration_stat(baseline)

    comparisons: List[Comparison] = []
    skipped: List[str] = []
    for name in sorted(set(current_benches) | set(baseline_benches)):
        cur = current_benches.get(name)
        base = baseline_benches.get(name)
        if (
            name == CALIBRATION_NAME
            or cur is None
            or base is None
            or cur.get("error")
            or base.get("error")
        ):
            if name != CALIBRATION_NAME:
                skipped.append(name)
            continue
        cur_norm = _normalised(_gate_stat(cur), current_cal)
        base_norm = _normalised(_gate_stat(base), baseline_cal)
        ratio = cur_norm / base_norm if base_norm > 0 else float("inf")
        comparisons.append(
            Comparison(
                name=name,
                baseline_norm=base_norm,
                current_norm=cur_norm,
                ratio=ratio,
                regressed=ratio > max_regress,
            )
        )
    return GateReport(
        comparisons=comparisons, max_regress=max_regress, skipped=skipped
    )


def _gate_stat(record: Dict[str, Any]) -> float:
    """The statistic the gate compares: the best (minimum) sample.

    The minimum is the noise-robust choice for timing benchmarks — OS
    jitter only ever *adds* time, so the best of N repeats converges on
    the code's true cost — while a uniform code regression (or the
    selftest's 2x inflation) still shifts it proportionally.
    """
    value = record.get("min_s")
    return float(value if value else record["median_s"])


def _calibration_stat(document: Dict[str, Any]) -> float:
    """A BENCH.json's calibration denominator (same statistic)."""
    record = document.get("benchmarks", {}).get(CALIBRATION_NAME)
    if record and not record.get("error"):
        return _gate_stat(record)
    return float(document.get("calibration_s") or 0.0)


def _normalised(stat_s: float, calibration_s: float) -> float:
    """Gate statistic divided by calibration (raw seconds if absent)."""
    return stat_s / calibration_s if calibration_s > 0 else stat_s


def _median(samples: Sequence[float]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * len(ordered) + 0.5)) - 1))
    return ordered[rank]

"""The benchmark registry — named, machine-drivable perf probes.

Mirrors the experiment registry's shape: each benchmark is a
:class:`BenchSpec` registered at import time, and consumers (the CLI's
``repro bench``, the CI perf gate, the nightly workflow) select by name.

A benchmark's ``runner(repeats)`` owns its setup and timing loop and
returns a :class:`BenchMeasurement`: one wall-clock sample per repeat
(``times_s``) plus free-form scalar ``metrics`` (speedups vs the naive
paths, cache hit counters, ops/s).  The suite layer in
:mod:`repro.bench.suite` reduces samples to median/p95 and emits the
schema-versioned ``BENCH.json`` the regression gate consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


#: The kind of the machine-speed yardstick benchmark; the suite always
#: runs one (the gate normalizes every other benchmark against it).
CALIBRATION_KIND = "calibration"


class UnknownBenchError(KeyError):
    """Raised when a selection names a benchmark that is not registered."""

    def __init__(self, unknown: Sequence[str]) -> None:
        super().__init__(", ".join(unknown))
        self.unknown = list(unknown)

    def __str__(self) -> str:
        return f"unknown benchmark(s): {', '.join(self.unknown)}"


@dataclass
class BenchMeasurement:
    """What one benchmark run produced."""

    times_s: List[float]
    metrics: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchSpec:
    """One named benchmark."""

    name: str
    runner: Callable[[int], BenchMeasurement]
    kind: str = "micro"  # "micro" | "macro" | "calibration"
    description: str = ""
    repeats: int = 5
    order: int = 0

    def run(self, repeats: Optional[int] = None) -> BenchMeasurement:
        """Execute the benchmark (``repeats`` overrides the default)."""
        return self.runner(repeats if repeats is not None else self.repeats)


BENCH_REGISTRY: Dict[str, BenchSpec] = {}


def register_bench(spec: BenchSpec) -> BenchSpec:
    """Add a spec to the registry; re-registration replaces (idempotent)."""
    BENCH_REGISTRY[spec.name] = spec
    return spec


def load_bench_registry() -> Dict[str, BenchSpec]:
    """Import every benchmark module, guaranteeing a populated registry."""
    import importlib

    importlib.import_module("repro.bench.benches")
    return BENCH_REGISTRY


def ordered_bench_specs() -> List[BenchSpec]:
    """All registered benchmarks, in registration order."""
    load_bench_registry()
    return sorted(BENCH_REGISTRY.values(), key=lambda s: (s.order, s.name))


def available_bench_names() -> List[str]:
    """Canonical benchmark names."""
    return [spec.name for spec in ordered_bench_specs()]


def resolve_bench_selection(names: Optional[Sequence[str]] = None) -> List[BenchSpec]:
    """Turn a user selection into specs (empty = the full registry)."""
    load_bench_registry()
    if not names:
        return ordered_bench_specs()
    unknown = [n for n in names if n not in BENCH_REGISTRY]
    if unknown:
        raise UnknownBenchError(unknown)
    seen: Dict[str, BenchSpec] = {}
    for name in names:
        seen.setdefault(name, BENCH_REGISTRY[name])
    return list(seen.values())

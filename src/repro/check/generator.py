"""Seeded scenario generation.

Turns one integer seed into one :class:`~repro.check.scenario.Scenario`
deterministically — across processes and ``PYTHONHASHSEED`` values —
by drawing every decision from :class:`~repro.sim.rng.SeededRng` fork
streams.  The op mix mirrors the hypothesis state machine in
``tests/test_property_fuzz.py`` (launches, IPC, wakelocks, brightness,
kills, CPU load, calls, time), weighted towards the operations that
open and close collateral windows.
"""

from __future__ import annotations

from typing import List, Tuple

from ..sim.rng import SeededRng
from .scenario import Op, Scenario

DEFAULT_OPS = 40
DEFAULT_PACKAGES = 3
MAX_PACKAGES = 6

#: settle time at every block boundary; must exceed the 30 s screen-off
#: timeout and the longest incoming-call ring so each block starts from
#: an identical quiescent device state.
QUIESCE_SECONDS = 35.0
MAX_RING_SECONDS = 20.0

COMPONENT_TARGETS = ("PlainActivity", "PlainService")

# (kind, weight); arguments are drawn per-op below.
_OP_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("launch", 3.0),
    ("start_activity", 2.0),
    ("start_service", 2.0),
    ("stop_service", 1.0),
    ("bind_service", 3.0),
    ("unbind_service", 1.5),
    ("acquire_wakelock", 2.5),
    ("release_wakelock", 1.5),
    ("set_brightness", 1.5),
    ("set_brightness_mode", 0.7),
    ("user_brightness", 1.0),
    ("window_brightness", 0.7),
    ("press_home", 1.0),
    ("press_back", 1.0),
    ("tap_dialog", 0.5),
    ("force_stop", 1.0),
    ("advance", 4.0),
    ("burn_cpu", 1.5),
    ("incoming_call", 0.7),
    ("move_task_front", 1.0),
)


def fuzz_packages(count: int) -> Tuple[str, ...]:
    """The synthetic app graph's package names."""
    count = max(1, min(count, MAX_PACKAGES))
    return tuple(f"com.fuzz.app{i}" for i in range(count))


def _draw_op(rng: SeededRng, packages: Tuple[str, ...]) -> Op:
    kinds = [kind for kind, _ in _OP_WEIGHTS]
    weights = [weight for _, weight in _OP_WEIGHTS]
    kind = rng.weighted_choice(kinds, weights)
    if kind in ("launch", "force_stop"):
        return Op(kind, {"package": rng.choice(packages)})
    if kind in ("start_activity", "start_service", "stop_service",
                "bind_service", "move_task_front"):
        return Op(
            kind,
            {"caller": rng.choice(packages), "target": rng.choice(packages)},
        )
    if kind in ("unbind_service", "release_wakelock"):
        return Op(kind, {"index": rng.randint(0, 30)})
    if kind == "acquire_wakelock":
        return Op(
            kind,
            {"package": rng.choice(packages), "screen": rng.bernoulli(0.5)},
        )
    if kind == "set_brightness":
        return Op(
            kind,
            {"package": rng.choice(packages), "level": rng.randint(0, 255)},
        )
    if kind == "set_brightness_mode":
        return Op(
            kind, {"package": rng.choice(packages), "mode": rng.randint(0, 1)}
        )
    if kind == "user_brightness":
        return Op(kind, {"level": rng.randint(0, 255)})
    if kind == "window_brightness":
        return Op(
            kind,
            {"package": rng.choice(packages), "level": rng.randint(0, 255)},
        )
    if kind == "advance":
        return Op(kind, {"seconds": round(rng.uniform(0.5, 45.0), 3)})
    if kind == "burn_cpu":
        return Op(
            kind,
            {
                "package": rng.choice(packages),
                "load": round(rng.uniform(0.0, 1.0), 3),
            },
        )
    if kind == "incoming_call":
        return Op(kind, {"ring": round(rng.uniform(1.0, MAX_RING_SECONDS), 3)})
    return Op(kind)  # press_home / press_back / tap_dialog


def generate_scenario(
    seed: int,
    ops: int = DEFAULT_OPS,
    packages: int = DEFAULT_PACKAGES,
    blocks: int = 0,
) -> Scenario:
    """One deterministic scenario script for ``seed``.

    ``ops`` is the approximate number of body operations; the structural
    quiesce ops at block boundaries come on top.  ``blocks=0`` lets the
    seed pick 2-4 independent blocks.
    """
    rng = SeededRng(seed)
    structure = rng.fork("structure")
    body = rng.fork("ops")

    names = fuzz_packages(packages)
    block_count = blocks if blocks > 0 else structure.randint(2, 4)
    ops = max(ops, block_count)  # at least one body op per block

    # Spread the body ops over the blocks (deterministically uneven).
    shares = [structure.uniform(0.5, 1.5) for _ in range(block_count)]
    total_share = sum(shares)
    sizes = [max(1, int(round(ops * share / total_share))) for share in shares]

    quiesce = Op("quiesce", {"seconds": QUIESCE_SECONDS})
    script: List[Op] = [quiesce]  # preamble: settle into the quiescent state
    block_lens: List[int] = []
    for block_index, size in enumerate(sizes):
        block: List[Op] = [
            Op("launch", {"package": body.choice(names)})  # wake the block up
        ]
        for _ in range(size):
            block.append(_draw_op(body, names))
        block.append(quiesce)
        script.extend(block)
        block_lens.append(len(block))

    return Scenario(
        seed=seed,
        packages=names,
        ops=script,
        preamble_len=1,
        block_lens=block_lens,
    )

"""Replayable scenario scripts.

A *scenario script* is a serialisable program of framework operations
(launch, bind, wakelock, brightness, kill, advance-time, ...) over a
synthetic app graph.  Scripts are the conformance harness's unit of
work: the generator emits them from a seed, the runner executes them
against a fresh simulated device, the shrinker minimises failing ones,
and the corpus stores them as JSON for pytest to replay.

Scripts are canonically hashable (:meth:`Scenario.script_hash` digests
the sorted-key JSON form), so a script can serve as a cache key and two
runs of the same campaign can be compared hash-for-hash.

Block structure
---------------

Ops are grouped into a *preamble* followed by independent *blocks*.
Every block ends with a ``quiesce`` op that force-stops all scenario
apps, zeroes their CPU load, restores brightness defaults, and lets
pending timers drain — so each block starts from the same device state.
That independence is what the window-permutation metamorphic oracle
exercises: permuting blocks must preserve per-(host, target) collateral
totals.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

SCENARIO_SCHEMA = 1

# op kind -> required argument names (the whole scripting surface).
OP_KINDS: Dict[str, Tuple[str, ...]] = {
    "launch": ("package",),
    "start_activity": ("caller", "target"),
    "start_service": ("caller", "target"),
    "stop_service": ("caller", "target"),
    "bind_service": ("caller", "target"),
    "unbind_service": ("index",),
    "acquire_wakelock": ("package", "screen"),
    "release_wakelock": ("index",),
    "set_brightness": ("package", "level"),
    "set_brightness_mode": ("package", "mode"),
    "user_brightness": ("level",),
    "window_brightness": ("package", "level"),
    "press_home": (),
    "press_back": (),
    "tap_dialog": (),
    "force_stop": ("package",),
    "advance": ("seconds",),
    "burn_cpu": ("package", "load"),
    "incoming_call": ("ring",),
    "move_task_front": ("caller", "target"),
    "quiesce": ("seconds",),
}

# ops whose arguments are durations, scaled by the time-dilation oracle.
_TIME_ARGS: Dict[str, str] = {
    "advance": "seconds",
    "incoming_call": "ring",
    "quiesce": "seconds",
}


@dataclass(frozen=True)
class Op:
    """One scripted framework operation."""

    kind: str
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = OP_KINDS.get(self.kind)
        if expected is None:
            raise ValueError(f"unknown op kind {self.kind!r}")
        missing = [name for name in expected if name not in self.args]
        if missing:
            raise ValueError(f"op {self.kind!r} missing args: {missing}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {"kind": self.kind, **dict(self.args)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Op":
        """Rebuild from :meth:`to_dict` data."""
        args = {k: v for k, v in data.items() if k != "kind"}
        return cls(kind=data["kind"], args=args)

    def dilated(self, factor: float) -> "Op":
        """This op with its duration argument (if any) scaled."""
        time_arg = _TIME_ARGS.get(self.kind)
        if time_arg is None:
            return self
        args = dict(self.args)
        args[time_arg] = args[time_arg] * factor
        return Op(kind=self.kind, args=args)


@dataclass
class Scenario:
    """A replayable scenario script over a synthetic app set.

    ``ops[:preamble_len]`` is the fixed preamble; the rest splits into
    ``block_lens`` consecutive independent blocks (see the module
    docstring).  ``sum(block_lens) + preamble_len == len(ops)``.
    """

    seed: int
    packages: Tuple[str, ...]
    ops: List[Op]
    preamble_len: int = 0
    block_lens: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.block_lens and self.preamble_len + sum(self.block_lens) != len(
            self.ops
        ):
            raise ValueError(
                "block structure does not cover the op list: "
                f"{self.preamble_len} + {self.block_lens} != {len(self.ops)}"
            )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the on-disk scenario-script format)."""
        return {
            "schema": SCENARIO_SCHEMA,
            "seed": self.seed,
            "packages": list(self.packages),
            "preamble_len": self.preamble_len,
            "block_lens": list(self.block_lens),
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild from :meth:`to_dict` data."""
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValueError(f"unsupported scenario schema {schema!r}")
        return cls(
            seed=int(data["seed"]),
            packages=tuple(data["packages"]),
            ops=[Op.from_dict(op) for op in data["ops"]],
            preamble_len=int(data.get("preamble_len", 0)),
            block_lens=[int(n) for n in data.get("block_lens", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialise to the scenario-script JSON format."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario-script JSON document."""
        return cls.from_dict(json.loads(text))

    def script_hash(self) -> str:
        """Stable content hash of the script (cache/manifest key)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # metamorphic transforms
    # ------------------------------------------------------------------
    def dilated(self, factor: float) -> "Scenario":
        """The same script with every duration scaled by ``factor``."""
        return Scenario(
            seed=self.seed,
            packages=self.packages,
            ops=[op.dilated(factor) for op in self.ops],
            preamble_len=self.preamble_len,
            block_lens=list(self.block_lens),
        )

    def blocks(self) -> List[List[Op]]:
        """The independent blocks (after the preamble), as op lists."""
        out: List[List[Op]] = []
        cursor = self.preamble_len
        for length in self.block_lens:
            out.append(self.ops[cursor : cursor + length])
            cursor += length
        return out

    def permuted(self, order: Sequence[int]) -> "Scenario":
        """The same script with its blocks reordered by ``order``."""
        blocks = self.blocks()
        if sorted(order) != list(range(len(blocks))):
            raise ValueError(f"order {order!r} is not a permutation of the blocks")
        ops = list(self.ops[: self.preamble_len])
        for index in order:
            ops.extend(blocks[index])
        return Scenario(
            seed=self.seed,
            packages=self.packages,
            ops=ops,
            preamble_len=self.preamble_len,
            block_lens=[self.block_lens[i] for i in order],
        )

    # ------------------------------------------------------------------
    # shrinking support
    # ------------------------------------------------------------------
    def without_ops(self, start: int, stop: int) -> "Scenario":
        """The script with ``ops[start:stop]`` deleted, blocks adjusted."""
        keep = [i for i in range(len(self.ops)) if not start <= i < stop]
        ops = [self.ops[i] for i in keep]
        preamble = sum(1 for i in keep if i < self.preamble_len)
        block_lens: List[int] = []
        cursor = self.preamble_len
        for length in self.block_lens:
            surviving = sum(1 for i in keep if cursor <= i < cursor + length)
            if surviving:
                block_lens.append(surviving)
            cursor += length
        return Scenario(
            seed=self.seed,
            packages=self.packages,
            ops=ops,
            preamble_len=preamble,
            block_lens=block_lens,
        )

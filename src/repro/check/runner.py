"""Scenario execution and per-scenario verdicts.

:class:`ScenarioExecutor` replays one scenario script against a fresh
simulated device; :func:`run_scenario` wraps that with the oracle
catalogue — step oracles after every op (or every ``stride`` ops), the
differential reconciliation at the end, and the replay-based
metamorphic oracles:

* **observer purity** — running the identical script *without*
  ``attach_eandroid`` must drain the battery bit-identically (the
  paper's §VI-B "equal efficiency" claim, generalised to arbitrary
  scripts);
* **time dilation** — scaling every duration (including the screen-off
  timeout) by *k* must scale every energy total by exactly *k*;
* **window permutation** — reordering the script's independent blocks
  must preserve per-(host, target) collateral totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.links import SCREEN_TARGET
from .oracles import (
    DIFF_ABS_TOL,
    DIFF_REL_TOL,
    OracleViolation,
    check_end,
    check_step,
)
from .scenario import Op, Scenario

DILATION_FACTOR = 2.0


class ScenarioExecutor:
    """Replays one scenario script on a fresh simulated device."""

    def __init__(
        self,
        scenario: Scenario,
        attach: bool = True,
        dilation: float = 1.0,
    ) -> None:
        from ..android.framework import AndroidSystem
        from ..android.settings import SCREEN_OFF_TIMEOUT
        from ..apps.testkit import make_app

        self.scenario = scenario
        self.dilation = dilation
        self.system = AndroidSystem()
        for package in scenario.packages:
            self.system.install(make_app(package))
        if dilation != 1.0:
            # Framework time constants must dilate with the script, or
            # the screen would wink out "early" in dilated runs.
            timeout = self.system.settings.get(SCREEN_OFF_TIMEOUT)
            self.system.settings.put_as_system(
                SCREEN_OFF_TIMEOUT, float(timeout) * dilation
            )
        self.system.boot()
        self.ea = None
        if attach:
            from ..core import attach_eandroid

            self.ea = attach_eandroid(self.system)
        self._connections: List[Any] = []
        self._locks: List[Any] = []
        self._brightness_default = self.system.settings.get("screen_brightness")
        self._mode_default = self.system.settings.get("screen_brightness_mode")

    # ------------------------------------------------------------------
    def run(self, step_hook=None) -> None:
        """Execute every op; ``step_hook(index, op)`` runs after each."""
        for index, op in enumerate(self.scenario.ops):
            self.apply(op)
            if step_hook is not None:
                step_hook(index, op)

    def apply(self, op: Op) -> None:
        """Execute one op (mirrors the hypothesis state machine rules)."""
        getattr(self, f"_op_{op.kind}")(**dict(op.args))

    # -- op implementations --------------------------------------------
    def _op_launch(self, package: str) -> None:
        self.system.launch_app(package)

    def _op_start_activity(self, caller: str, target: str) -> None:
        from ..android import explicit

        self.system.am.start_activity(
            self.system.uid_of(caller), explicit(target, "PlainActivity")
        )

    def _op_start_service(self, caller: str, target: str) -> None:
        from ..android import explicit

        self.system.am.start_service(
            self.system.uid_of(caller), explicit(target, "PlainService")
        )

    def _op_stop_service(self, caller: str, target: str) -> None:
        from ..android import explicit

        self.system.am.stop_service(
            self.system.uid_of(caller), explicit(target, "PlainService")
        )

    def _op_bind_service(self, caller: str, target: str) -> None:
        from ..android import explicit

        self._connections.append(
            self.system.am.bind_service(
                self.system.uid_of(caller), explicit(target, "PlainService")
            )
        )

    def _op_unbind_service(self, index: int) -> None:
        live = [c for c in self._connections if c.bound]
        if live:
            self.system.am.unbind_service(live[index % len(live)])

    def _op_acquire_wakelock(self, package: str, screen: bool) -> None:
        from ..android import PARTIAL_WAKE_LOCK, SCREEN_BRIGHT_WAKE_LOCK

        lock_type = SCREEN_BRIGHT_WAKE_LOCK if screen else PARTIAL_WAKE_LOCK
        self._locks.append(
            self.system.power_manager.acquire(
                self.system.uid_of(package), lock_type, "check"
            )
        )

    def _op_release_wakelock(self, index: int) -> None:
        held = [lock for lock in self._locks if lock.held]
        if held:
            held[index % len(held)].release()

    def _op_set_brightness(self, package: str, level: int) -> None:
        from ..android import SCREEN_BRIGHTNESS

        self.system.settings.put(
            self.system.uid_of(package), SCREEN_BRIGHTNESS, level
        )

    def _op_set_brightness_mode(self, package: str, mode: int) -> None:
        from ..android import SCREEN_BRIGHTNESS_MODE

        self.system.settings.put(
            self.system.uid_of(package), SCREEN_BRIGHTNESS_MODE, mode
        )

    def _op_user_brightness(self, level: int) -> None:
        self.system.systemui.user_set_brightness(level)

    def _op_window_brightness(self, package: str, level: int) -> None:
        self.system.display.set_window_brightness(
            self.system.uid_of(package), level
        )

    def _op_press_home(self) -> None:
        self.system.press_home()

    def _op_press_back(self) -> None:
        self.system.press_back()

    def _op_tap_dialog(self) -> None:
        self.system.tap_dialog_ok()

    def _op_force_stop(self, package: str) -> None:
        self.system.am.force_stop(package)
        self._connections = [c for c in self._connections if c.bound]
        self._locks = [lock for lock in self._locks if lock.held]

    def _op_advance(self, seconds: float) -> None:
        self.system.run_for(seconds * self.dilation)

    def _op_burn_cpu(self, package: str, load: float) -> None:
        self.system.hardware.cpu.set_utilization(
            self.system.uid_of(package), load
        )

    def _op_incoming_call(self, ring: float) -> None:
        self.system.incoming_call(ring_seconds=ring * self.dilation)

    def _op_move_task_front(self, caller: str, target: str) -> None:
        from ..android import ActivityNotFoundError

        try:
            self.system.am.move_task_to_front(
                self.system.uid_of(caller), target
            )
        except ActivityNotFoundError:
            pass  # target never launched: legal no-op

    def _op_quiesce(self, seconds: float) -> None:
        """Return the device to the canonical quiescent state."""
        for package in self.scenario.packages:
            uid = self.system.uid_of(package)
            # Locks held by a uid with no running process survive a
            # force-stop, so release explicitly first.
            for lock in self.system.power_manager.held_locks(uid):
                lock.release()
            self.system.am.force_stop(package)
            self.system.hardware.cpu.set_utilization(uid, 0.0)
        self._connections = [c for c in self._connections if c.bound]
        self._locks = [lock for lock in self._locks if lock.held]
        from ..android.settings import SCREEN_BRIGHTNESS_MODE

        self.system.settings.put_as_system(
            SCREEN_BRIGHTNESS_MODE, self._mode_default
        )
        # Write twice so at least one *user* brightness change is always
        # recorded — a same-value write short-circuits in the settings
        # provider and would leave an app's brightness-attack window open.
        self.system.systemui.user_set_brightness(self._brightness_default - 1)
        self.system.systemui.user_set_brightness(self._brightness_default)
        self.system.press_home()
        self.system.run_for(seconds * self.dilation)

    # ------------------------------------------------------------------
    def collateral_totals(self) -> Dict[Tuple[int, int], float]:
        """Per-(host, target) collateral joules for the whole run."""
        if self.ea is None:
            return {}
        out: Dict[Tuple[int, int], float] = {}
        for host in self.ea.accounting.hosts():
            for target, joules in self.ea.accounting.collateral_breakdown(
                host
            ).items():
                out[(host, target)] = joules
        return out


@dataclass
class ScenarioReport:
    """One scenario's verdict."""

    scenario: Scenario
    violations: List[OracleViolation] = field(default_factory=list)
    ops_executed: int = 0
    final_time_s: float = 0.0
    total_energy_j: float = 0.0

    @property
    def passed(self) -> bool:
        """True when no oracle fired."""
        return not self.violations

    def violated_oracles(self) -> List[str]:
        """Names of the oracles that fired, deduplicated, stable order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.oracle not in seen:
                seen.append(violation.oracle)
        return seen

    def to_verdict(self) -> Dict[str, Any]:
        """JSON-ready per-scenario verdict (manifests, fuzz batches)."""
        return {
            "seed": self.scenario.seed,
            "script_hash": self.scenario.script_hash(),
            "ops": len(self.scenario.ops),
            "ok": self.passed,
            "violations": [v.to_dict() for v in self.violations],
        }


def _label(target: int) -> str:
    return "screen" if target == SCREEN_TARGET else str(target)


def run_scenario(
    scenario: Scenario,
    stride: int = 1,
    metamorphic: bool = True,
    step_oracles: Optional[Sequence[str]] = None,
    end_oracles: Optional[Sequence[str]] = None,
) -> ScenarioReport:
    """Execute one scenario under the full oracle catalogue.

    ``stride`` trades coverage for speed: step oracles run after every
    ``stride``-th op (and always after the last).  ``metamorphic=False``
    skips the three replay-based oracles (three extra full executions).
    """
    report = ScenarioReport(scenario=scenario)
    executor = ScenarioExecutor(scenario, attach=True)
    seen_oracles: set = set()
    last_index = len(scenario.ops) - 1

    def step_hook(index: int, op: Op) -> None:
        if stride > 1 and index % stride != 0 and index != last_index:
            return
        for violation in check_step(executor.system, executor.ea, step_oracles):
            if violation.oracle not in seen_oracles:
                seen_oracles.add(violation.oracle)
                report.violations.append(violation)
        report.ops_executed = index + 1

    executor.run(step_hook)
    report.ops_executed = len(scenario.ops)
    report.final_time_s = executor.system.now
    report.total_energy_j = executor.system.hardware.meter.total_energy_j()

    for violation in check_end(executor.system, executor.ea, end_oracles):
        if violation.oracle not in seen_oracles:
            seen_oracles.add(violation.oracle)
            report.violations.append(violation)

    if metamorphic:
        report.violations.extend(_check_observer_purity(scenario, executor))
        report.violations.extend(_check_time_dilation(scenario, executor))
        report.violations.extend(_check_window_permutation(scenario, executor))
    return report


# ----------------------------------------------------------------------
# metamorphic oracles (replay-based)
# ----------------------------------------------------------------------
def _check_observer_purity(
    scenario: Scenario, instrumented: ScenarioExecutor
) -> List[OracleViolation]:
    """Attaching E-Android must not change the battery drain at all."""
    bare = ScenarioExecutor(scenario, attach=False)
    bare.run()
    instrumented_drain = instrumented.system.battery.energy_used_j()
    bare_drain = bare.system.battery.energy_used_j()
    if instrumented_drain != bare_drain:
        return [OracleViolation(
            "observer_purity",
            f"attach_eandroid changed the drain: {instrumented_drain!r} J "
            f"instrumented vs {bare_drain!r} J bare",
        )]
    return []


def _check_time_dilation(
    scenario: Scenario, base: ScenarioExecutor
) -> List[OracleViolation]:
    """Dilating every duration by k scales every energy total by k."""
    factor = DILATION_FACTOR
    # Executor-level dilation scales op durations *and* the framework's
    # screen-off timeout together; Scenario.dilated() alone would leave
    # fixed timers undilated and break linearity by design.
    dilated = ScenarioExecutor(scenario, attach=True, dilation=factor)
    dilated.run()
    out: List[OracleViolation] = []

    base_total = base.system.hardware.meter.total_energy_j()
    dilated_total = dilated.system.hardware.meter.total_energy_j()
    if not math.isclose(
        dilated_total, base_total * factor, rel_tol=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL
    ):
        out.append(OracleViolation(
            "time_dilation",
            f"total energy {base_total!r} J dilated x{factor} gave "
            f"{dilated_total!r} J (expected {base_total * factor!r} J)",
        ))

    base_collateral = base.collateral_totals()
    dilated_collateral = dilated.collateral_totals()
    for key in sorted(set(base_collateral) | set(dilated_collateral)):
        a = base_collateral.get(key, 0.0)
        b = dilated_collateral.get(key, 0.0)
        if not math.isclose(
            b, a * factor, rel_tol=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL
        ):
            host, target = key
            out.append(OracleViolation(
                "time_dilation",
                f"collateral host {host} target {_label(target)}: "
                f"{a!r} J dilated x{factor} gave {b!r} J",
            ))
    return out


def _check_window_permutation(
    scenario: Scenario, base: ScenarioExecutor
) -> List[OracleViolation]:
    """Reordering independent blocks preserves collateral totals."""
    from ..sim.rng import SeededRng

    if len(scenario.block_lens) < 2:
        return []
    # Soundness precondition: permutation is only metamorphic when every
    # block restores the canonical device state, i.e. ends in a quiesce
    # (and the preamble quiesces too).  Shrinking can delete quiesces;
    # such candidates are legitimately order-dependent, not failures.
    if scenario.preamble_len < 1 or not all(
        op.kind == "quiesce" for op in scenario.ops[: scenario.preamble_len]
    ):
        return []  # first block would start from boot, not canonical, state
    if not all(block[-1].kind == "quiesce" for block in scenario.blocks()):
        return []
    order = list(range(len(scenario.block_lens)))
    SeededRng(scenario.seed).fork("permutation").shuffle(order)
    if order == sorted(order):
        order.reverse()  # force a real permutation
    permuted = ScenarioExecutor(scenario.permuted(order), attach=True)
    permuted.run()
    out: List[OracleViolation] = []

    base_total = base.system.hardware.meter.total_energy_j()
    permuted_total = permuted.system.hardware.meter.total_energy_j()
    if not math.isclose(
        permuted_total, base_total, rel_tol=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL
    ):
        out.append(OracleViolation(
            "window_permutation",
            f"block order {order} changed total energy: {base_total!r} J "
            f"vs {permuted_total!r} J",
        ))

    base_collateral = base.collateral_totals()
    permuted_collateral = permuted.collateral_totals()
    for key in sorted(set(base_collateral) | set(permuted_collateral)):
        a = base_collateral.get(key, 0.0)
        b = permuted_collateral.get(key, 0.0)
        if not math.isclose(a, b, rel_tol=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL):
            host, target = key
            out.append(OracleViolation(
                "window_permutation",
                f"block order {order} changed collateral for host {host} "
                f"target {_label(target)}: {a!r} J vs {b!r} J",
            ))
    return out

"""Greedy scenario minimisation.

Given a failing scenario script and a predicate ("does this candidate
still trip the same oracle?"), :func:`shrink` deletes ops in
exponentially shrinking chunks — the classic ddmin sweep — until no
single op can be removed without losing the failure.  The result is
what lands in the replayable failure corpus: a minimal script plus the
seed that found it.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .runner import run_scenario
from .scenario import Scenario

Predicate = Callable[[Scenario], bool]


def oracle_predicate(
    oracles: Sequence[str],
    stride: int = 1,
    metamorphic: Optional[bool] = None,
) -> Predicate:
    """A predicate that re-runs a candidate and checks the same oracles
    still fire.

    The metamorphic replays triple the cost of each probe, so they only
    run when one of the target ``oracles`` is itself metamorphic
    (unless forced via ``metamorphic``).
    """
    from .oracles import METAMORPHIC_ORACLES

    wanted = set(oracles)
    need_replays = (
        metamorphic
        if metamorphic is not None
        else bool(wanted & set(METAMORPHIC_ORACLES))
    )

    def predicate(candidate: Scenario) -> bool:
        report = run_scenario(candidate, stride=stride, metamorphic=need_replays)
        return bool(wanted & set(report.violated_oracles()))

    return predicate


def shrink(
    scenario: Scenario,
    still_fails: Predicate,
    max_probes: int = 400,
) -> Scenario:
    """Minimise ``scenario`` while ``still_fails`` holds.

    Greedy chunked deletion: try removing windows of half the script,
    then quarters, down to single ops; restart from large chunks after
    any successful deletion, and stop once a full single-op sweep (or
    the probe budget) finds nothing removable.
    """
    current = scenario
    probes = 0
    improved = True
    while improved and probes < max_probes:
        improved = False
        size = max(len(current.ops) // 2, 1)
        while size >= 1 and probes < max_probes:
            index = 0
            while index < len(current.ops) and probes < max_probes:
                candidate = current.without_ops(index, index + size)
                if not candidate.ops:
                    index += size
                    continue
                probes += 1
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    # keep index: the next chunk slid into this slot
                else:
                    index += size
            size //= 2
    return current

"""The fuzz campaign driver behind ``python -m repro check``.

Derives one scenario seed per requested case (via the stable
:func:`~repro.sim.rng.derive_seed`, so campaigns replay identically
across processes and ``PYTHONHASHSEED`` values), splits the seeds into
batches, and fans the batches out over the existing
:class:`~repro.exec.engine.ExperimentEngine` — one ``fuzz`` experiment
job per batch, cached on disk under the batch's combined script digest.

Failing seeds are then shrunk locally (greedy op deletion while the
same oracle keeps firing) and written into the replayable failure
corpus, which ``tests/test_corpus_replay.py`` replays as regression
tests.  ``--save`` additionally produces the engine ``manifest.json``
plus a ``BENCH_fuzz.json`` summary.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..sim.rng import derive_seed
from ..store.codecs import CORPUS_KIND, CORPUS_SCHEMA
from .generator import generate_scenario
from .runner import run_scenario
from .scenario import Scenario
from .shrinker import oracle_predicate, shrink

BENCH_SCHEMA = 1
MAX_BATCH = 50  # seeds per engine job; keeps cache entries replayable in chunks


@dataclass(frozen=True)
class CampaignConfig:
    """One ``repro check`` invocation's knobs."""

    fuzz: int = 50
    seed: int = 7
    jobs: int = 1
    ops: int = 40
    stride: int = 1
    metamorphic: bool = True
    corpus_dir: Optional[str] = None
    save_dir: Optional[str] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    refresh: bool = False
    telemetry: bool = False
    verbose: bool = False
    chaos: bool = False
    faults_path: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for BENCH_fuzz.json)."""
        data = {
            "fuzz": self.fuzz,
            "seed": self.seed,
            "jobs": self.jobs,
            "ops": self.ops,
            "stride": self.stride,
            "metamorphic": self.metamorphic,
        }
        if self.chaos:
            data["chaos"] = True
        return data


@dataclass
class CorpusEntry:
    """One shrunk failing script written to the corpus."""

    path: Path
    seed: int
    oracles: List[str]
    original_ops: int
    shrunk_ops: int


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    config: CampaignConfig
    verdicts: List[Dict[str, Any]]
    corpus_entries: List[CorpusEntry] = field(default_factory=list)
    wall_time_s: float = 0.0
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    engine_run: Any = None
    chaos: Optional[Dict[str, Any]] = None

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """The failing verdicts."""
        return [v for v in self.verdicts if not v["ok"]]

    @property
    def passed(self) -> bool:
        """True when every scenario satisfied every oracle.

        Under ``--chaos`` the oracle changes: the fault-free reference
        leg must pass AND every verdict that completed under faults
        must be byte-identical to its reference — runs the faults kept
        from completing surface as DEVIATIONs but are not mismatches.
        """
        if self.chaos is not None:
            return bool(self.chaos.get("passed"))
        return not self.failures

    def render_text(self) -> str:
        """Human summary for the CLI."""
        lines = [
            f"fuzzed {len(self.verdicts)} scenario(s) from seed "
            f"{self.config.seed} ({self.config.ops} body op(s) each): "
            f"{len(self.verdicts) - len(self.failures)} ok, "
            f"{len(self.failures)} failing",
        ]
        for verdict in self.failures:
            oracles = sorted({v["oracle"] for v in verdict["violations"]})
            lines.append(
                f"  FAIL seed {verdict['seed']} script {verdict['script_hash']}"
                f" — {', '.join(oracles)}"
            )
        for entry in self.corpus_entries:
            lines.append(
                f"  corpus: {entry.path} ({entry.original_ops} -> "
                f"{entry.shrunk_ops} op(s))"
            )
        if self.chaos is not None:
            injected = self.chaos.get("injection", {}).get("injected", {})
            total = sum(injected.values())
            lines.append(
                f"chaos: {total} fault(s) injected across "
                f"{len(injected)} site(s); "
                f"{self.chaos['identical']}/{self.chaos['compared']} "
                f"verdict(s) byte-identical to the fault-free run, "
                f"{self.chaos['degraded']} degraded gracefully, "
                f"{self.chaos['incomplete']} did not complete (DEVIATION)"
            )
            for seed in self.chaos.get("mismatched_seeds", []):
                lines.append(f"  CHAOS MISMATCH seed {seed}")
        lines.append(f"wall time {self.wall_time_s:.2f}s")
        return "\n".join(lines)


def scenario_seeds(base_seed: int, count: int) -> List[int]:
    """The per-scenario seeds of a campaign (stable derivation)."""
    return [derive_seed(base_seed, f"scenario-{i}") for i in range(count)]


def _batches(seeds: List[int], jobs: int) -> List[List[int]]:
    """Split seeds into engine jobs: at least one per worker, at most
    MAX_BATCH seeds each, deterministically from (len(seeds), jobs)."""
    if not seeds:
        return []
    workers = max(1, jobs)
    count = max(workers, (len(seeds) + MAX_BATCH - 1) // MAX_BATCH)
    count = min(count, len(seeds))
    size = (len(seeds) + count - 1) // count
    return [seeds[i : i + size] for i in range(0, len(seeds), size)]


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run one fuzz campaign end to end."""
    from ..exec import EngineConfig, ExperimentEngine

    if config.chaos:
        return run_chaos_campaign(config)

    started = time.perf_counter()
    seeds = scenario_seeds(config.seed, config.fuzz)
    requests = []
    for batch in _batches(seeds, config.jobs):
        digest = _batch_digest(batch, config)
        requests.append((
            "fuzz",
            {
                "seeds": batch,
                "ops": config.ops,
                "stride": config.stride,
                "metamorphic": config.metamorphic,
                "scripts_digest": digest,
            },
        ))

    engine = ExperimentEngine(
        EngineConfig(
            parallel=config.jobs,
            cache_dir=config.cache_dir or None,
            use_cache=config.use_cache,
            refresh=config.refresh,
            telemetry=config.telemetry,
            verbose=config.verbose,
        )
    )
    run = engine.run(requests)

    verdicts: List[Dict[str, Any]] = []
    for result in run.results:
        batch_verdicts = result.outcome.metrics.get("verdicts")
        if batch_verdicts is None:
            # Worker crashed even after retries: synthesise failing
            # verdicts so the campaign surfaces every affected seed.
            batch_verdicts = [
                {
                    "seed": seed,
                    "script_hash": generate_scenario(
                        seed, ops=config.ops
                    ).script_hash(),
                    "ops": 0,
                    "ok": False,
                    "violations": [
                        {"oracle": "harness", "message": result.error or "crash"}
                    ],
                }
                for seed in result.params["seeds"]
            ]
        verdicts.extend(batch_verdicts)

    report = CampaignReport(
        config=config,
        verdicts=verdicts,
        wall_time_s=time.perf_counter() - started,
        cache_stats=run.cache_stats.as_dict(),
        engine_run=run,
    )
    if config.corpus_dir:
        for verdict in report.failures:
            entry = _shrink_to_corpus(verdict, config)
            if entry is not None:
                report.corpus_entries.append(entry)
    report.wall_time_s = time.perf_counter() - started
    if config.save_dir:
        _save_artifacts(report, run)
    return report


# ----------------------------------------------------------------------
# chaos: the same campaign twice, once under an armed fault plan
# ----------------------------------------------------------------------
def run_chaos_campaign(config: CampaignConfig) -> CampaignReport:
    """``repro check --chaos``: byte-identity under deterministic faults.

    Runs the campaign twice — a fault-free *reference* leg, then the
    exact same work with the fault plane armed (``--faults PLAN.json``,
    or the stock 5% mixed plan) — and asserts that every scenario that
    *completes* under faults produces a verdict byte-identical to its
    reference.  Verdicts the faults kept from completing (a worker lost
    even after the requeue) surface as ``harness`` DEVIATIONs and are
    counted, not compared; anything else that diverges is a chaos
    mismatch and fails the check.

    Both legs run cache-cold: a cache hit would skip the very store and
    exec paths the faults exercise, and neither leg may be served
    results the other computed.
    """
    from dataclasses import replace

    from ..faults import FaultPlan, activate

    started = time.perf_counter()
    plan = (
        FaultPlan.load(config.faults_path)
        if config.faults_path
        else FaultPlan.mixed()
    )
    base = replace(
        config,
        chaos=False,
        faults_path=None,
        use_cache=False,
        refresh=False,
        save_dir=None,
        corpus_dir=None,
    )
    reference = run_campaign(base)
    with activate(plan, config.seed) as plane:
        disturbed = run_campaign(base)
        injection = plane.summary()

    by_seed = {v["seed"]: v for v in reference.verdicts}
    compared = identical = degraded = incomplete = 0
    mismatched: List[int] = []
    for verdict in disturbed.verdicts:
        oracles = {v["oracle"] for v in verdict.get("violations", [])}
        if not verdict["ok"] and oracles == {"harness"}:
            incomplete += 1  # did not complete under faults: DEVIATION, not drift
            continue
        compared += 1
        expected = json.dumps(by_seed.get(verdict["seed"]), sort_keys=True)
        if json.dumps(verdict, sort_keys=True) == expected:
            identical += 1
        elif json.dumps(_strip_injected(verdict), sort_keys=True) == expected:
            # Every extra violation names an injected fault (e.g. the
            # fastpath oracle's own service queries got a typed refusal)
            # and nothing else moved: graceful degradation, not drift.
            degraded += 1
        else:
            mismatched.append(verdict["seed"])

    section = {
        "plan": plan.to_dict(),
        "seed": config.seed,
        "injection": injection,
        "scenarios": len(disturbed.verdicts),
        "compared": compared,
        "identical": identical,
        "degraded": degraded,
        "incomplete": incomplete,
        "mismatched_seeds": mismatched,
        "reference_failures": len(reference.failures),
        "passed": reference.passed and not mismatched,
    }
    report = CampaignReport(
        config=config,
        verdicts=disturbed.verdicts,
        cache_stats=disturbed.cache_stats,
        engine_run=disturbed.engine_run,
        chaos=section,
    )
    if config.corpus_dir:
        for seed in mismatched:
            entry = _chaos_mismatch_to_corpus(seed, config, plan)
            if entry is not None:
                report.corpus_entries.append(entry)
    report.wall_time_s = time.perf_counter() - started
    if config.save_dir:
        _save_artifacts(report, disturbed.engine_run)
    return report


#: Substrings that tag a violation as caused by an injected fault.
_INJECTED_MARKERS = ("injected io-error at", "injected worker crash at")


def _strip_injected(verdict: Dict[str, Any]) -> Dict[str, Any]:
    """The verdict with injected-fault violations removed.

    A process-wide fault plane also hits the services the oracles drive
    internally; violations whose message names an injected fault are the
    degradation being *surfaced*, so byte-identity is judged on what
    remains (with ``ok`` recomputed accordingly).
    """
    kept = [
        violation
        for violation in verdict.get("violations", [])
        if not any(
            marker in violation.get("message", "")
            for marker in _INJECTED_MARKERS
        )
    ]
    stripped = dict(verdict)
    stripped["violations"] = kept
    stripped["ok"] = not kept
    return stripped


def _chaos_mismatch_to_corpus(
    seed: int, config: CampaignConfig, plan: "Any"
) -> Optional[CorpusEntry]:
    """Record one diverged seed as a replayable chaos corpus entry."""
    scenario = generate_scenario(seed, ops=config.ops)
    final = run_scenario(
        scenario, stride=config.stride, metamorphic=config.metamorphic
    )
    if not final.passed:
        return None  # a real oracle failure owns this seed, not chaos
    return write_corpus_entry(
        Path(config.corpus_dir),
        scenario,
        oracles=["chaos"],
        violations=[
            {
                "oracle": "chaos",
                "message": (
                    "verdict diverged from the fault-free run under the "
                    f"armed fault plan (campaign seed {config.seed})"
                ),
            }
        ],
        original_ops=len(scenario.ops),
        chaos={"seed": config.seed, "fault_plan": plan.to_dict()},
    )


def _batch_digest(batch: List[int], config: CampaignConfig) -> str:
    """Combined script hash of a seed batch — the cache key's anchor."""
    import hashlib

    digest = hashlib.sha256()
    for seed in batch:
        scenario = generate_scenario(seed, ops=config.ops)
        digest.update(scenario.script_hash().encode("ascii"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# failure corpus
# ----------------------------------------------------------------------
def _shrink_to_corpus(
    verdict: Dict[str, Any], config: CampaignConfig
) -> Optional[CorpusEntry]:
    """Shrink one failing seed and write the minimal script."""
    oracles = sorted({v["oracle"] for v in verdict["violations"]})
    if oracles == ["harness"]:
        return None  # worker crash, nothing to replay
    scenario = generate_scenario(verdict["seed"], ops=config.ops)
    predicate = oracle_predicate(oracles, stride=config.stride)
    minimal = shrink(scenario, predicate)
    final = run_scenario(minimal, stride=config.stride, metamorphic=config.metamorphic)
    return write_corpus_entry(
        Path(config.corpus_dir),
        minimal,
        oracles=oracles,
        violations=[v.to_dict() for v in final.violations],
        original_ops=len(scenario.ops),
    )


def write_corpus_entry(
    corpus_dir: Path,
    scenario: Scenario,
    oracles: List[str],
    violations: List[Dict[str, str]],
    original_ops: int,
    store: Optional[Any] = None,
    chaos: Optional[Dict[str, Any]] = None,
) -> CorpusEntry:
    """Write one corpus document via the ``corpus-json`` codec.

    The on-disk bytes are exactly what the codec produces (indent-2,
    sorted keys — the historical corpus convention), so entries stay
    diff-friendly and byte-identical whether they were written here or
    by ``repro store add``.  With a ``store``, the entry is also pinned
    as a ``refs/corpus/<name>`` artifact.  ``chaos`` (a
    ``{"seed": N, "fault_plan": {...}}`` mapping) marks the entry as a
    chaos finding: :func:`repro.faults.replay_chaos_entry` replays it
    under the recorded plan and seed.
    """
    from ..store import get_codec

    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = f"{oracles[0]}-seed{scenario.seed}-{scenario.script_hash()}.json"
    path = corpus_dir / name
    document = {
        "schema": CORPUS_SCHEMA,
        "kind": CORPUS_KIND,
        "oracles": oracles,
        "violations": violations,
        "original_ops": original_ops,
        "shrunk_ops": len(scenario.ops),
        "scenario": scenario.to_dict(),
    }
    if chaos is not None:
        document["chaos"] = chaos
    path.write_bytes(get_codec("corpus-json").encode(document))
    if store is not None:
        info = store.put(document, "corpus-json", meta={"source": str(path)})
        store.set_ref("corpus", path.stem, info.digest)
    return CorpusEntry(
        path=path,
        seed=scenario.seed,
        oracles=oracles,
        original_ops=original_ops,
        shrunk_ops=len(scenario.ops),
    )


def load_corpus_entry(path: Path) -> Dict[str, Any]:
    """Parse one corpus document (validating kind + schema via the codec)."""
    from ..store import CodecError, get_codec

    raw = Path(path).read_bytes()
    try:
        return get_codec("corpus-json").decode(raw)
    except CodecError as exc:
        raise ValueError(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
def _save_artifacts(report: CampaignReport, run: Any) -> List[str]:
    """Write manifest.json + BENCH_fuzz.json into the save directory."""
    from ..exec import write_manifest

    directory = Path(report.config.save_dir)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = write_manifest(run, directory)
    if report.chaos is not None:
        data = json.loads(manifest_path.read_text(encoding="utf-8"))
        data["chaos"] = report.chaos
        manifest_path.write_text(json.dumps(data, indent=2), encoding="utf-8")
    written = [str(manifest_path)]
    bench = directory / "BENCH_fuzz.json"
    bench.write_text(
        json.dumps(build_bench(report), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    written.append(str(bench))
    return written


def build_bench(report: CampaignReport) -> Dict[str, Any]:
    """The BENCH_fuzz.json payload."""
    scenarios = len(report.verdicts)
    payload = {
        "schema": BENCH_SCHEMA,
        "campaign": report.config.as_dict(),
        "scenarios": scenarios,
        "passed": scenarios - len(report.failures),
        "failed": len(report.failures),
        "failed_seeds": [v["seed"] for v in report.failures],
        "script_hashes": [v["script_hash"] for v in report.verdicts],
        "corpus_entries": [str(e.path) for e in report.corpus_entries],
        "cache": report.cache_stats,
        "wall_time_s": report.wall_time_s,
        "scenarios_per_s": (
            scenarios / report.wall_time_s if report.wall_time_s > 0 else 0.0
        ),
    }
    if report.chaos is not None:
        payload["chaos"] = report.chaos
    return payload

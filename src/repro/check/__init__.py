"""``repro.check`` — the conformance harness.

Promotes the DESIGN.md §5 invariants from the property-test suite into
a reusable oracle library, adds differential (profiler reconciliation,
observer purity) and metamorphic (time dilation, block permutation)
oracles, and drives them at scale: a seeded scenario generator emits
replayable JSON scripts, a greedy shrinker minimises failures into a
regression corpus, and ``python -m repro check`` fans seed batches out
over the parallel experiment engine.

See ``docs/TESTING.md`` for the oracle catalogue and triage workflow.
"""

from .campaign import (
    CampaignConfig,
    CampaignReport,
    CorpusEntry,
    build_bench,
    load_corpus_entry,
    run_campaign,
    scenario_seeds,
    write_corpus_entry,
)
from .generator import fuzz_packages, generate_scenario
from .oracles import (
    END_ORACLES,
    METAMORPHIC_ORACLES,
    STEP_ORACLES,
    OracleViolation,
    check_end,
    check_step,
)
from .runner import ScenarioExecutor, ScenarioReport, run_scenario
from .scenario import OP_KINDS, Op, Scenario
from .shrinker import oracle_predicate, shrink

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CorpusEntry",
    "OP_KINDS",
    "Op",
    "OracleViolation",
    "Scenario",
    "ScenarioExecutor",
    "ScenarioReport",
    "STEP_ORACLES",
    "END_ORACLES",
    "METAMORPHIC_ORACLES",
    "build_bench",
    "check_end",
    "check_step",
    "fuzz_packages",
    "generate_scenario",
    "load_corpus_entry",
    "oracle_predicate",
    "run_campaign",
    "run_scenario",
    "scenario_seeds",
    "shrink",
    "write_corpus_entry",
]

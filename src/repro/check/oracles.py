"""The conformance oracle catalogue.

Each oracle inspects one live simulated device (an ``AndroidSystem``
with E-Android attached) and returns the invariant violations it found.
The six *step* oracles are the DESIGN.md §5 invariants that must hold
after **every** framework operation; the *end* oracles are differential
reconciliations run once per scenario.  Metamorphic oracles (observer
purity, time dilation, window permutation) need whole-scenario replays
and therefore live in :mod:`repro.check.runner`, but report violations
through the same :class:`OracleViolation` type.

Both consumers share this single implementation: the hypothesis state
machine in ``tests/test_property_fuzz.py`` asserts after every random
rule, and the fuzz campaign (``python -m repro check``) drives the same
functions over generated scenario scripts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem
    from ..core.eandroid import EAndroid

# Conservation identities use the property-test tolerance; charge bounds
# allow the meter's interval-arithmetic slack.
REL_TOL = 1e-9
ABS_TOL = 1e-9
CHARGE_SLACK_J = 1e-6
DIFF_REL_TOL = 1e-6
DIFF_ABS_TOL = 1e-6


@dataclass(frozen=True)
class OracleViolation:
    """One invariant breach: which oracle fired and why."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready form (for verdicts, manifests, corpus entries)."""
        return {"oracle": self.oracle, "message": self.message}


Oracle = Callable[["AndroidSystem", "EAndroid"], List[OracleViolation]]


def _close(a: float, b: float, rel: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


# ----------------------------------------------------------------------
# step oracles — DESIGN.md §5
# ----------------------------------------------------------------------
def energy_conservation(system: "AndroidSystem", ea: "EAndroid") -> List[OracleViolation]:
    """Per-owner energies sum to the device total, which equals drain."""
    meter = system.hardware.meter
    out: List[OracleViolation] = []
    total = meter.total_energy_j()
    by_owner = sum(meter.energy_by_owner().values())
    if not _close(total, by_owner):
        out.append(OracleViolation(
            "energy_conservation",
            f"owner sum {by_owner!r} J != meter total {total!r} J",
        ))
    drained = system.battery.energy_used_j()
    if not _close(drained, total):
        out.append(OracleViolation(
            "energy_conservation",
            f"battery drain {drained!r} J != meter total {total!r} J",
        ))
    return out


def map_link_consistency(system: "AndroidSystem", ea: "EAndroid") -> List[OracleViolation]:
    """Open map elements mirror live-link reachability exactly."""
    out: List[OracleViolation] = []
    graph = ea.accounting.graph
    for host in sorted(graph.hosts()):
        open_targets = ea.accounting.map_for(host).open_targets()
        reachable = graph.reachable_from(host)
        if open_targets != reachable:
            out.append(OracleViolation(
                "map_link_consistency",
                f"host {host}: open elements {sorted(open_targets)} != "
                f"reachable {sorted(reachable)}",
            ))
    return out


def window_well_formedness(system: "AndroidSystem", ea: "EAndroid") -> List[OracleViolation]:
    """Charge windows are ordered, non-overlapping, and within [0, now]."""
    out: List[OracleViolation] = []
    now = system.now
    for host in sorted(ea.accounting.maps.hosts()):
        for target, element in sorted(ea.accounting.map_for(host).items()):
            previous_end = -1.0
            for start, end in element.closed:
                if not (start < end <= now + ABS_TOL) or start < previous_end - ABS_TOL:
                    out.append(OracleViolation(
                        "window_well_formedness",
                        f"host {host} target {target}: bad closed window "
                        f"({start!r}, {end!r}) after end {previous_end!r} "
                        f"at now {now!r}",
                    ))
                previous_end = max(previous_end, end)
            if element.open_since is not None and not (
                previous_end - ABS_TOL <= element.open_since <= now + ABS_TOL
            ):
                out.append(OracleViolation(
                    "window_well_formedness",
                    f"host {host} target {target}: open_since "
                    f"{element.open_since!r} outside [{previous_end!r}, {now!r}]",
                ))
    return out


def no_over_charging(system: "AndroidSystem", ea: "EAndroid") -> List[OracleViolation]:
    """Collateral charged per (host, target) never exceeds the target's
    own ground-truth energy."""
    from ..core.links import SCREEN_TARGET

    meter = system.hardware.meter
    out: List[OracleViolation] = []
    for host in ea.accounting.hosts():
        for target, joules in sorted(
            ea.accounting.collateral_breakdown(host).items()
        ):
            if target == SCREEN_TARGET:
                ground = meter.screen_energy_j()
            else:
                ground = meter.energy_j(owner=target)
            if joules > ground + CHARGE_SLACK_J:
                out.append(OracleViolation(
                    "no_over_charging",
                    f"host {host} charged {joules!r} J for target {target} "
                    f"but the target only drew {ground!r} J",
                ))
    return out


def profiler_conservation(system: "AndroidSystem", ea: "EAndroid") -> List[OracleViolation]:
    """PowerTutor redistributes the meter's energy, never invents any."""
    from ..accounting import PowerTutor

    report = PowerTutor(system).report()
    total = system.hardware.meter.total_energy_j()
    if not _close(report.total_energy_j(), total, rel=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL):
        return [OracleViolation(
            "profiler_conservation",
            f"PowerTutor total {report.total_energy_j()!r} J != "
            f"meter total {total!r} J",
        )]
    return []


def tracker_agreement(system: "AndroidSystem", ea: "EAndroid") -> List[OracleViolation]:
    """E-Android's trackers agree with the framework's own state."""
    out: List[OracleViolation] = []
    pm = system.package_manager
    counts = ea.monitor._screen_lock_counts
    for app in pm.installed_apps():
        uid = app.uid
        if uid is None or pm.is_system_uid(uid):
            continue
        actual = sum(
            1
            for lock in system.power_manager.held_locks(uid)
            if lock.keeps_screen_on
        )
        if counts.get(uid, 0) != actual:
            out.append(OracleViolation(
                "tracker_agreement",
                f"uid {uid}: monitor counts {counts.get(uid, 0)} screen "
                f"lock(s), framework holds {actual}",
            ))
    if system.am.timeline.current_uid != system.foreground_uid():
        out.append(OracleViolation(
            "tracker_agreement",
            f"timeline foreground {system.am.timeline.current_uid!r} != "
            f"framework foreground {system.foreground_uid()!r}",
        ))
    return out


# ----------------------------------------------------------------------
# end oracles — differential reconciliation
# ----------------------------------------------------------------------
def differential_reconciliation(
    system: "AndroidSystem", ea: "EAndroid"
) -> List[OracleViolation]:
    """Reconcile BatteryStats, PowerTutor, and E-Android on one run.

    All three profilers read the same meter, so their *ground-truth*
    totals must agree with the battery drain; E-Android's rows must be
    exactly the baseline rows plus collateral superimposition; and the
    superimposed collateral must match an **independent** recomputation
    from the raw charge windows — two code paths arriving at the same
    joules, which is what catches mis-attribution bugs of the kind the
    paper ascribes to the baselines.
    """
    from ..accounting import BatteryStats, PowerTutor
    from ..core.links import SCREEN_TARGET

    out: List[OracleViolation] = []
    meter = system.hardware.meter
    total = meter.total_energy_j()
    now = system.now

    battery_stats = BatteryStats(system).report()
    powertutor = PowerTutor(system).report()
    eandroid = ea.report()

    for name, profiler_total in (
        ("BatteryStats", battery_stats.total_energy_j()),
        ("PowerTutor", powertutor.total_energy_j()),
        ("battery drain", system.battery.energy_used_j()),
    ):
        if not _close(profiler_total, total, rel=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL):
            out.append(OracleViolation(
                "differential",
                f"{name} total {profiler_total!r} J != meter total {total!r} J",
            ))

    # E-Android = baseline + superimposed collateral, row by row.
    for entry in eandroid.entries:
        if entry.uid is None:
            continue
        baseline_entry = battery_stats.entry_for_uid(entry.uid)
        baseline_j = baseline_entry.energy_j if baseline_entry else 0.0
        if not _close(
            entry.own_energy_j, baseline_j, rel=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL
        ):
            out.append(OracleViolation(
                "differential",
                f"uid {entry.uid}: E-Android own energy {entry.own_energy_j!r} J "
                f"!= baseline {baseline_j!r} J",
            ))

    # Superimposed collateral vs an independent recomputation from the
    # raw windows (bypasses EAndroidAccounting.collateral_breakdown).
    accounting = ea.accounting
    recomputed_sum = 0.0
    reported_sum = 0.0
    for host in sorted(accounting.maps.hosts()):
        recomputed: Dict[int, float] = {}
        for target, element in accounting.map_for(host).items():
            intervals = element.clipped_intervals(0.0, now)
            if not intervals:
                continue
            joules = accounting.policy.charged_energy(meter, target, intervals)
            if joules > 0:
                recomputed[target] = joules
        reported = accounting.collateral_breakdown(host)
        recomputed_sum += sum(recomputed.values())
        reported_sum += sum(reported.values())
        for target in sorted(set(recomputed) | set(reported)):
            a = recomputed.get(target, 0.0)
            b = reported.get(target, 0.0)
            if not _close(a, b, rel=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL):
                label = "screen" if target == SCREEN_TARGET else str(target)
                out.append(OracleViolation(
                    "differential",
                    f"host {host} target {label}: window recomputation "
                    f"{a!r} J != reported breakdown {b!r} J",
                ))

    # Interface superimposition identity: report total == ground truth
    # plus every reported collateral charge.
    superimposed = eandroid.total_energy_j()
    if not _close(
        superimposed, total + reported_sum, rel=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL
    ):
        out.append(OracleViolation(
            "differential",
            f"E-Android view total {superimposed!r} J != ground truth "
            f"{total!r} + collateral {reported_sum!r} J",
        ))
    return out


def fastpath_equivalence(
    system: "AndroidSystem", ea: "EAndroid"
) -> List[OracleViolation]:
    """The fast paths equal a naive recomputation, bit for bit (± 1e-9).

    Three layers of caching sit between a query and the raw traces —
    per-trace prefix sums, the meter's per-owner memo, and the
    profilers' report caches.  This oracle recomputes each layer the
    slow way on the same device state:

    * every channel's ``energy_j`` vs its ``naive_energy_j`` O(B) walk;
    * ``energy_by_owner`` / per-owner ``energy_j`` vs the meter's
      full-rescan ``naive_*`` paths;
    * each profiler's (possibly cached) report vs a fresh profiler
      instance whose caches are stone cold;
    * reports served from a captured trace through the query service
      (:mod:`repro.serve`) vs the live profilers they must reproduce.
    """
    from ..accounting import BatteryStats, PowerTutor

    meter = system.hardware.meter
    out: List[OracleViolation] = []
    now = system.now
    windows = [(0.0, now), (now / 3.0, 2.0 * now / 3.0)] if now > 0 else [(0.0, 0.0)]

    for start, end in windows:
        for key in meter.channels():
            trace = meter.trace(*key)
            fast = trace.energy_j(start, end)
            naive = trace.naive_energy_j(start, end)
            if not _close(fast, naive, rel=DIFF_REL_TOL, abs_tol=ABS_TOL):
                out.append(OracleViolation(
                    "fastpath_equivalence",
                    f"channel {key}: prefix-sum energy {fast!r} J != "
                    f"naive walk {naive!r} J over [{start!r}, {end!r})",
                ))
        fast_owners = meter.energy_by_owner(start, end)
        naive_owners = meter.naive_energy_by_owner(start, end)
        for owner in sorted(set(fast_owners) | set(naive_owners)):
            a = fast_owners.get(owner, 0.0)
            b = naive_owners.get(owner, 0.0)
            if not _close(a, b, rel=DIFF_REL_TOL, abs_tol=ABS_TOL):
                out.append(OracleViolation(
                    "fastpath_equivalence",
                    f"owner {owner}: memoized energy {a!r} J != "
                    f"naive rescan {b!r} J over [{start!r}, {end!r})",
                ))
        fast_total = meter.total_energy_j(start, end)
        naive_total = meter.naive_energy_j(start=start, end=end)
        if not _close(fast_total, naive_total, rel=DIFF_REL_TOL, abs_tol=ABS_TOL):
            out.append(OracleViolation(
                "fastpath_equivalence",
                f"meter total {fast_total!r} J != naive total {naive_total!r} J "
                f"over [{start!r}, {end!r})",
            ))

    # Possibly-cached reports vs fresh instances with cold caches.
    for cached_profiler, fresh_profiler in (
        (BatteryStats(system), BatteryStats(system)),
        (PowerTutor(system), PowerTutor(system)),
    ):
        warmed = cached_profiler.report()  # prime the cache...
        warmed = cached_profiler.report()  # ...then read through it
        cold = fresh_profiler.report()
        warm_rows = {e.uid: e.energy_j for e in warmed.entries}
        cold_rows = {e.uid: e.energy_j for e in cold.entries}
        for uid in sorted(set(warm_rows) | set(cold_rows), key=repr):
            a = warm_rows.get(uid, 0.0)
            b = cold_rows.get(uid, 0.0)
            if not _close(a, b, rel=DIFF_REL_TOL, abs_tol=ABS_TOL):
                out.append(OracleViolation(
                    "fastpath_equivalence",
                    f"{cached_profiler.name} uid {uid!r}: cached report row "
                    f"{a!r} J != cold recompute {b!r} J",
                ))

    out.extend(_served_report_equivalence(system, ea))
    return out


def _served_report_equivalence(
    system: "AndroidSystem", ea: "EAndroid"
) -> List[OracleViolation]:
    """Reports served from a captured trace equal the live profilers.

    The query service answers every backend from an
    :class:`~repro.offline.OfflineAnalyzer` over a serialised
    :class:`~repro.offline.DeviceTrace` — an entirely separate code path
    from the live profilers (plus an LRU and the wire encoding).  Rows
    are keyed by uid; aggregate rows (``uid is None``) carry fixed
    per-backend labels, so those match on label.

    A second session, ``oracle-bin``, holds the *same* trace after a
    round trip through the columnar binary codec; every backend's
    served payload must be **byte-identical** between the two sessions
    (the binary format stores doubles bit-exactly, so there is no
    tolerance to hide behind).
    """
    import json as _json

    from ..accounting import BatteryStats, PowerTutor
    from ..offline import capture_trace
    from ..serve import ProfilingService, ServiceClient, ServiceConfig
    from ..store import decode_trace, encode_trace

    out: List[OracleViolation] = []
    service = ProfilingService(ServiceConfig(workers=1, telemetry=False))
    live_trace = capture_trace(system, ea)
    service.ingest_trace("oracle", live_trace, "fastpath oracle")
    service.ingest_trace(
        "oracle-bin", decode_trace(encode_trace(live_trace)), "fastpath oracle (bin)"
    )
    client = ServiceClient(service)

    for backend, live_report in (
        ("batterystats", BatteryStats(system).report()),
        ("powertutor", PowerTutor(system).report()),
        ("eandroid", ea.report()),
    ):
        (query,) = client.build("oracle", backend)
        response = service.submit(query)
        if not response.ok:
            out.append(OracleViolation(
                "fastpath_equivalence",
                f"served {backend} query failed: "
                f"{response.status} ({response.error!r})",
            ))
            continue
        served = response.report or {}

        def _row_key(uid: object, label: str) -> object:
            return uid if uid is not None else f"label:{label}"

        served_rows = {
            _row_key(row.get("uid"), row.get("label", "")): row["energy_j"]
            for row in served.get("entries", [])
        }
        live_rows = {
            _row_key(entry.uid, entry.label): entry.energy_j
            for entry in live_report.entries
        }
        for key in sorted(set(served_rows) | set(live_rows), key=repr):
            a = served_rows.get(key, 0.0)
            b = live_rows.get(key, 0.0)
            if not _close(a, b, rel=DIFF_REL_TOL, abs_tol=DIFF_ABS_TOL):
                out.append(OracleViolation(
                    "fastpath_equivalence",
                    f"served {backend} row {key!r}: {a!r} J != live "
                    f"profiler row {b!r} J",
                ))
        if not _close(
            served.get("total_j", 0.0),
            live_report.total_energy_j(),
            rel=DIFF_REL_TOL,
            abs_tol=DIFF_ABS_TOL,
        ):
            out.append(OracleViolation(
                "fastpath_equivalence",
                f"served {backend} total {served.get('total_j')!r} J != "
                f"live total {live_report.total_energy_j()!r} J",
            ))

        # Binary-store byte-identity: the same backend served from the
        # binary-round-tripped session must produce the same payload,
        # byte for byte.
        (bin_query,) = client.build("oracle-bin", backend)
        bin_response = service.submit(bin_query)
        if not bin_response.ok:
            out.append(OracleViolation(
                "fastpath_equivalence",
                f"served {backend} query against the binary session failed: "
                f"{bin_response.status} ({bin_response.error!r})",
            ))
            continue
        json_bytes = _json.dumps(served, sort_keys=True)
        bin_bytes = _json.dumps(bin_response.report or {}, sort_keys=True)
        if json_bytes != bin_bytes:
            out.append(OracleViolation(
                "fastpath_equivalence",
                f"served {backend} payload differs between the JSON session "
                f"and the binary-codec session (not byte-identical)",
            ))
    return out


# ----------------------------------------------------------------------
# catalogue + drivers
# ----------------------------------------------------------------------
STEP_ORACLES: Dict[str, Oracle] = {
    "energy_conservation": energy_conservation,
    "map_link_consistency": map_link_consistency,
    "window_well_formedness": window_well_formedness,
    "no_over_charging": no_over_charging,
    "profiler_conservation": profiler_conservation,
    "tracker_agreement": tracker_agreement,
}

END_ORACLES: Dict[str, Oracle] = {
    "differential": differential_reconciliation,
    "fastpath_equivalence": fastpath_equivalence,
}

#: metamorphic oracles are replay-based and implemented by the runner;
#: named here so selections and docs can refer to the full catalogue.
METAMORPHIC_ORACLES = ("observer_purity", "time_dilation", "window_permutation")


def check_step(
    system: "AndroidSystem",
    ea: "EAndroid",
    oracles: Optional[Sequence[str]] = None,
) -> List[OracleViolation]:
    """Run the (selected) step oracles once; returns all violations."""
    names = oracles if oracles is not None else STEP_ORACLES
    out: List[OracleViolation] = []
    for name in names:
        out.extend(STEP_ORACLES[name](system, ea))
    return out


def check_end(
    system: "AndroidSystem",
    ea: "EAndroid",
    oracles: Optional[Sequence[str]] = None,
) -> List[OracleViolation]:
    """Run the (selected) end-of-run oracles once."""
    names = oracles if oracles is not None else END_ORACLES
    out: List[OracleViolation] = []
    for name in names:
        out.extend(END_ORACLES[name](system, ea))
    return out

"""Typed fleet-aggregation requests — one query shape, many sessions.

An :class:`AggregateRequest` is the cross-session counterpart of
:class:`~repro.reports.ReportRequest`: instead of "render backend X's
report for *one* session", it asks "fold backend X's view of *every
matching session* into one number per group".  It names:

* a *backend* — which attribution policy values the rows
  (:data:`~repro.reports.request.BACKENDS`);
* an *op* — how per-group values reduce (:data:`OPS`:
  ``sum`` / ``mean`` / ``topk`` / ``histogram``);
* a *group-by* — what a "group" is (:data:`GROUP_BYS`: per app
  ``owner``, per Play-Store-style ``category``, or per collateral
  attack ``mechanism``);
* a *session selector* — one or more ``fnmatch`` patterns over session
  names, with ``"*"`` (the default) meaning the whole fleet;
* the usual time *window* (``start`` / ``end``).

Requests are frozen, hashable, and round-trip through flat JSON — the
wire shape the serve daemon accepts (any JSONL line carrying an ``op``
field parses as an aggregate, everything else stays a per-session
query).  :meth:`AggregateRequest.cache_token` is the stable identity
that keys memoized per-session partials in the artifact store.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..reports.request import BACKENDS, UnknownBackendError

#: Version tag stamped into every aggregate payload.
AGGREGATE_SCHEMA = "repro.aggregate/1"

#: The supported reduction operators.
OPS: Tuple[str, ...] = ("sum", "mean", "topk", "histogram")

#: The supported grouping dimensions.
#:
#: * ``owner`` — one group per report row label (apps keep their label,
#:   the Screen / Android OS aggregates keep theirs);
#: * ``category`` — rows folded onto Play-Store-style app categories
#:   (see :func:`category_of`), the Fig. 2 census axis;
#: * ``mechanism`` — collateral energy grouped by the attack-link kind
#:   that drove it (the Fig. 5 lifecycle machines), read from the link
#:   log and ground-truth channels.
GROUP_BYS: Tuple[str, ...] = ("owner", "category", "mechanism")

#: Labels the framework owns; they bypass the category hash.
_SPECIAL_CATEGORIES = {
    "Screen": "system_screen",
    "Screen (no foreground)": "system_screen",
    "Android OS": "system_os",
    "System": "system_os",
}


class AggregateRequestError(ValueError):
    """An aggregate request document is malformed."""


def category_of(label: str) -> str:
    """The deterministic app category for a report-row label.

    Corpus apps named ``com.play.<category>.appNNNN`` (the Fig. 2
    synthetic fleet) carry their category in the package id; framework
    aggregates map to ``system_*`` buckets; every other label hashes
    stably (crc32) onto the paper's 28 category profiles — the
    simulation's stand-in for a Play-Store category lookup.
    """
    special = _SPECIAL_CATEGORIES.get(label)
    if special is not None:
        return special
    if label.startswith("com.play."):
        parts = label.split(".")
        if len(parts) >= 4 and parts[2]:
            return parts[2]
    from ..apps import CATEGORY_PROFILES

    index = zlib.crc32(label.encode("utf-8")) % len(CATEGORY_PROFILES)
    return CATEGORY_PROFILES[index][0]


@dataclass(frozen=True)
class AggregateRequest:
    """One fleet aggregation: backend + op + group-by + session selector.

    ``k`` applies to ``topk`` (how many groups to keep); ``bins`` and
    ``bin_width`` apply to ``histogram`` (fixed bins ``[i*w, (i+1)*w)``
    with the last bin absorbing overflow).  ``end=None`` means "to each
    session's natural end" (its ``captured_at``).
    """

    backend: str
    op: str = "sum"
    group_by: str = "owner"
    sessions: Tuple[str, ...] = ("*",)
    start: float = 0.0
    end: Optional[float] = None
    k: int = 10
    bins: int = 16
    bin_width: float = 1.0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise UnknownBackendError(self.backend)
        if self.op not in OPS:
            raise AggregateRequestError(
                f"unknown aggregate op {self.op!r} "
                f"(expected one of: {', '.join(OPS)})"
            )
        if self.group_by not in GROUP_BYS:
            raise AggregateRequestError(
                f"unknown group-by {self.group_by!r} "
                f"(expected one of: {', '.join(GROUP_BYS)})"
            )
        patterns = tuple(str(p) for p in self.sessions)
        if not patterns or any(not p for p in patterns):
            raise AggregateRequestError(
                "session selector needs at least one non-empty pattern"
            )
        # Selector identity is a *set* of patterns: order and duplicates
        # must not change the cache token.
        object.__setattr__(self, "sessions", tuple(sorted(set(patterns))))
        if self.start < 0.0:
            raise AggregateRequestError(
                f"window start must be >= 0, got {self.start!r}"
            )
        if self.end is not None and self.end < self.start:
            raise AggregateRequestError(
                f"window end {self.end!r} precedes start {self.start!r}"
            )
        if self.op == "topk" and self.k < 1:
            raise AggregateRequestError(f"topk needs k >= 1, got {self.k!r}")
        if self.op == "histogram":
            if self.bins < 1:
                raise AggregateRequestError(
                    f"histogram needs bins >= 1, got {self.bins!r}"
                )
            if self.bin_width <= 0.0:
                raise AggregateRequestError(
                    f"histogram needs bin_width > 0, got {self.bin_width!r}"
                )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def key(self) -> Tuple[Any, ...]:
        """Hashable identity (everything that changes the answer)."""
        return (
            self.backend,
            self.op,
            self.group_by,
            self.sessions,
            self.start,
            self.end,
            self.k if self.op == "topk" else None,
            (self.bins, self.bin_width) if self.op == "histogram" else None,
        )

    def partial_key(self) -> Tuple[Any, ...]:
        """The identity of one session's *partial* under this request.

        Narrower than :meth:`key`: the session selector and ``k`` do
        not change what a single session contributes, so partials are
        shared across requests that differ only in those.
        """
        return (
            self.backend,
            self.op if self.op == "histogram" else "grouped",
            self.group_by,
            self.start,
            self.end,
            (self.bins, self.bin_width) if self.op == "histogram" else None,
        )

    def cache_token(self) -> str:
        """Stable hex token for store refs (hash of :meth:`partial_key`)."""
        canonical = json.dumps(self.partial_key(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def matches(self, session: str) -> bool:
        """Whether a session name is selected by this request."""
        return any(fnmatchcase(session, pattern) for pattern in self.sessions)

    def select(self, names: Iterable[str]) -> List[str]:
        """The sorted subset of ``names`` this request selects."""
        return sorted(name for name in names if self.matches(name))

    def window(self, end_default: float) -> Tuple[float, float]:
        """The concrete (start, end) given one session's natural end."""
        return (self.start, end_default if self.end is None else self.end)

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (one JSONL line)."""
        data: Dict[str, Any] = {
            "backend": self.backend,
            "op": self.op,
            "group_by": self.group_by,
            "sessions": list(self.sessions),
            "start": self.start,
            "end": self.end,
        }
        if self.op == "topk":
            data["k"] = self.k
        if self.op == "histogram":
            data["bins"] = self.bins
            data["bin_width"] = self.bin_width
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AggregateRequest":
        """Parse the :meth:`to_dict` shape (validating as it builds)."""
        if "backend" not in data:
            raise AggregateRequestError(
                "aggregate is missing required field 'backend'"
            )
        sessions = data.get("sessions", "*")
        if isinstance(sessions, str):
            sessions = (sessions,)
        try:
            return cls(
                backend=str(data["backend"]),
                op=str(data.get("op", "sum")),
                group_by=str(data.get("group_by", "owner")),
                sessions=tuple(str(p) for p in sessions),
                start=float(data.get("start", 0.0)),
                end=None if data.get("end") is None else float(data["end"]),
                k=int(data.get("k", 10)),
                bins=int(data.get("bins", 16)),
                bin_width=float(data.get("bin_width", 1.0)),
            )
        except (TypeError,) as exc:
            raise AggregateRequestError(f"malformed aggregate request: {exc}") from exc


def is_aggregate_document(data: Mapping[str, Any]) -> bool:
    """Whether a parsed JSONL line is an aggregate (vs per-session) query.

    The discriminator is the ``op`` field: per-session
    :class:`~repro.serve.protocol.QueryRequest` documents never carry
    one.
    """
    return isinstance(data, Mapping) and "op" in data

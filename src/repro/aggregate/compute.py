"""Per-session partial computation — the scatter step's inner loop.

Given one session's :class:`~repro.offline.analyzer.OfflineAnalyzer`
and an :class:`~repro.aggregate.request.AggregateRequest`, produce the
session's mergeable partial:

* ``owner`` / ``category`` group-bys render the requested backend's
  report through the unified Report API
  (:meth:`OfflineAnalyzer.describe`) and fold row energies onto group
  labels — so an ``eandroid`` aggregate sees collateral superimposed
  exactly as a per-session query would;
* ``mechanism`` reads the trace's attack-link log directly: each link
  overlapping the window charges its driven target's ground-truth
  energy (over the clipped interval) to the link's
  :class:`~repro.core.links.AttackKind` value.  This is the fleet form
  of the Fig. 5 per-lifecycle breakdown and is backend-independent by
  construction.

The computation is pure and deterministic for a given (trace, request)
— the property the store memoization and the byte-identity CI diffs
rely on.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from ..power.meter import SCREEN_OWNER
from ..reports.request import ReportRequest
from .partial import GroupedPartial, HistogramPartial
from .request import AggregateRequest, category_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..offline.analyzer import OfflineAnalyzer

SCREEN_TARGET = -100  # matches repro.offline.analyzer.SCREEN_TARGET


def session_values(
    analyzer: "OfflineAnalyzer", request: AggregateRequest
) -> Dict[str, float]:
    """One session's group -> value map under ``request``."""
    if request.group_by == "mechanism":
        return _mechanism_values(analyzer, request)
    report_request = ReportRequest(
        backend=request.backend, start=request.start, end=request.end
    )
    view = analyzer.describe(report_request)
    values: Dict[str, float] = {}
    for entry in view.rows():
        group = (
            category_of(entry.label)
            if request.group_by == "category"
            else entry.label
        )
        values[group] = values.get(group, 0.0) + entry.energy_j
    return values


def _mechanism_values(
    analyzer: "OfflineAnalyzer", request: AggregateRequest
) -> Dict[str, float]:
    """Collateral joules per attack-link kind, from the link log."""
    trace = analyzer.trace
    start, end = request.window(trace.captured_at)
    values: Dict[str, float] = {}
    for link in trace.links:
        link_end = trace.captured_at if link.end_time is None else link.end_time
        seg_start = max(link.begin_time, start)
        seg_end = min(link_end, end)
        if seg_end <= seg_start:
            continue
        owner = SCREEN_OWNER if link.target == SCREEN_TARGET else link.target
        joules = analyzer.energy_j(owner=owner, start=seg_start, end=seg_end)
        if joules > 0:
            values[link.kind] = values.get(link.kind, 0.0) + joules
    return values


def session_partial(
    session: str, analyzer: "OfflineAnalyzer", request: AggregateRequest
):
    """One session's mergeable partial under ``request``."""
    values = session_values(analyzer, request)
    if request.op == "histogram":
        return HistogramPartial.for_session(
            session, values, bins=request.bins, bin_width=request.bin_width
        )
    return GroupedPartial.for_session(session, values)

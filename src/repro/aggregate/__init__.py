"""Fleet-scale scatter-gather aggregation over profiling sessions.

The cross-session counterpart of the per-session Report API: a typed
:class:`AggregateRequest` selects sessions by ``fnmatch`` pattern, fans
per-session mergeable partials out through the exec engine, and gathers
them into one versioned ``repro.aggregate/1`` payload — with store
memoization of partials and chaos-plane coverage of the dispatch and
merge sites.  See ``docs/AGGREGATION.md``.
"""

from .request import (
    AGGREGATE_SCHEMA,
    GROUP_BYS,
    OPS,
    AggregateRequest,
    AggregateRequestError,
    category_of,
    is_aggregate_document,
)
from .partial import (
    PARTIAL_SCHEMA,
    GroupedPartial,
    HistogramPartial,
    PartialFormatError,
    PartialMergeError,
    empty_partial,
    merge_partials,
    partial_from_dict,
)
from .compute import session_partial, session_values
from .engine import (
    AGGREGATE_REF_NAMESPACE,
    AggregateResponse,
    run_aggregate,
)

__all__ = [
    "AGGREGATE_REF_NAMESPACE",
    "AGGREGATE_SCHEMA",
    "GROUP_BYS",
    "OPS",
    "PARTIAL_SCHEMA",
    "AggregateRequest",
    "AggregateRequestError",
    "AggregateResponse",
    "GroupedPartial",
    "HistogramPartial",
    "PartialFormatError",
    "PartialMergeError",
    "category_of",
    "empty_partial",
    "is_aggregate_document",
    "merge_partials",
    "partial_from_dict",
    "run_aggregate",
    "session_partial",
    "session_values",
]

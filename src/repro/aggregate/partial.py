"""Mergeable per-session summaries — the scatter-gather currency.

Each selected session contributes one *partial*; the gather step folds
partials into the final ``repro.aggregate/1`` payload.  The contract
that makes the fan-out safe to reorder, memoize, and retry:

* ``merge(a, b)`` is **pure** (returns a new partial, inputs untouched),
  **commutative**, and **associative** — the property suite proves that
  shuffled shard orders produce *byte-identical* payloads;
* merging rejects overlapping sessions (:class:`PartialMergeError`), so
  a retried shard can never double-count a session silently;
* every partial round-trips through flat JSON
  (:data:`PARTIAL_SCHEMA`), which is both the shard wire form and the
  artifact-store memo format.

Float associativity is handled structurally rather than numerically:
:class:`GroupedPartial` keeps *per-session* values (group -> session ->
joules) and only folds them into totals at :meth:`finalize` time, in
canonical sorted-session order.  Merge itself is a disjoint dict union
— exactly associative — so the reduction order of the gather tree can
never leak into the payload bytes.  :class:`HistogramPartial` counts
are integers, where addition is associative already.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .request import AggregateRequest

#: Version tag of the partial wire/memo format.
PARTIAL_SCHEMA = "repro.aggregate-partial/1"


class PartialFormatError(ValueError):
    """A partial document is malformed or wrongly versioned."""


class PartialMergeError(ValueError):
    """Two partials could not merge (shape mismatch or session overlap)."""


@dataclass(frozen=True)
class GroupedPartial:
    """Per-session group values; serves the sum / mean / topk ops.

    ``groups`` maps group label -> session name -> value.  ``sessions``
    is the set of sessions this partial covers — including sessions
    that contributed *no* groups (an empty report still counts toward
    ``mean`` denominators being well-defined and toward coverage
    accounting).
    """

    groups: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    sessions: frozenset = frozenset()

    kind = "grouped"

    @classmethod
    def for_session(
        cls, session: str, values: Mapping[str, float]
    ) -> "GroupedPartial":
        """One session's contribution: its per-group values."""
        return cls(
            groups={group: {session: float(value)} for group, value in values.items()},
            sessions=frozenset([session]),
        )

    def merge(self, other: "GroupedPartial") -> "GroupedPartial":
        """Disjoint union (pure; associative and commutative)."""
        if not isinstance(other, GroupedPartial):
            raise PartialMergeError(
                f"cannot merge grouped partial with {type(other).__name__}"
            )
        overlap = self.sessions & other.sessions
        if overlap:
            raise PartialMergeError(
                f"session(s) present on both sides: {', '.join(sorted(overlap))}"
            )
        merged: Dict[str, Dict[str, float]] = {
            group: dict(per_session) for group, per_session in self.groups.items()
        }
        for group, per_session in other.groups.items():
            merged.setdefault(group, {}).update(per_session)
        return GroupedPartial(
            groups=merged, sessions=self.sessions | other.sessions
        )

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, float]:
        """group -> sum over sessions, folded in canonical order."""
        return {
            group: sum(
                per_session[session] for session in sorted(per_session)
            )
            for group, per_session in sorted(self.groups.items())
        }

    def finalize(self, request: "AggregateRequest") -> Dict[str, Any]:
        """The op-specific ``result`` section of the payload."""
        totals = self.totals()
        if request.op == "sum":
            return {"groups": totals, "group_count": len(totals)}
        if request.op == "mean":
            return {
                "groups": {
                    group: {
                        "mean": total / len(self.groups[group]),
                        "count": len(self.groups[group]),
                        "total": total,
                    }
                    for group, total in totals.items()
                },
                "group_count": len(totals),
            }
        if request.op == "topk":
            # Selection happens here, once, over exact totals — a
            # bounded heap at merge time would make the answer depend
            # on merge order.  Ties break on the group label so the
            # payload stays deterministic.
            top = heapq.nsmallest(
                request.k, totals.items(), key=lambda item: (-item[1], item[0])
            )
            return {
                "top": [{"group": group, "total": total} for group, total in top],
                "k": request.k,
                "group_count": len(totals),
            }
        raise PartialFormatError(
            f"grouped partial cannot finalize op {request.op!r}"
        )

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (shard wire + store memo), canonically sorted."""
        return {
            "schema": PARTIAL_SCHEMA,
            "kind": self.kind,
            "sessions": sorted(self.sessions),
            "groups": {
                group: {
                    session: per_session[session]
                    for session in sorted(per_session)
                }
                for group, per_session in sorted(self.groups.items())
            },
        }


@dataclass(frozen=True)
class HistogramPartial:
    """Fixed-bin counts of per-(session, group) values.

    Bin ``i`` counts values in ``[i*bin_width, (i+1)*bin_width)``; the
    last bin absorbs everything beyond the range, so the vector length
    is fixed and merge is plain element-wise integer addition.
    """

    counts: tuple = ()
    bin_width: float = 1.0
    sessions: frozenset = frozenset()
    samples: int = 0

    kind = "histogram"

    @classmethod
    def for_session(
        cls,
        session: str,
        values: Mapping[str, float],
        bins: int,
        bin_width: float,
    ) -> "HistogramPartial":
        """One session's contribution: its group values, binned."""
        counts = [0] * bins
        for value in values.values():
            index = int(value / bin_width) if value > 0 else 0
            counts[min(index, bins - 1)] += 1
        return cls(
            counts=tuple(counts),
            bin_width=float(bin_width),
            sessions=frozenset([session]),
            samples=len(values),
        )

    def merge(self, other: "HistogramPartial") -> "HistogramPartial":
        """Element-wise addition (pure; associative and commutative)."""
        if not isinstance(other, HistogramPartial):
            raise PartialMergeError(
                f"cannot merge histogram partial with {type(other).__name__}"
            )
        if not self.sessions:
            return other
        if not other.sessions:
            return self
        if len(self.counts) != len(other.counts) or self.bin_width != other.bin_width:
            raise PartialMergeError(
                f"histogram shapes differ: {len(self.counts)}x{self.bin_width} "
                f"vs {len(other.counts)}x{other.bin_width}"
            )
        overlap = self.sessions & other.sessions
        if overlap:
            raise PartialMergeError(
                f"session(s) present on both sides: {', '.join(sorted(overlap))}"
            )
        return HistogramPartial(
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            bin_width=self.bin_width,
            sessions=self.sessions | other.sessions,
            samples=self.samples + other.samples,
        )

    def finalize(self, request: "AggregateRequest") -> Dict[str, Any]:
        """The ``result`` section: the counts plus their bin geometry."""
        counts = list(self.counts) if self.counts else [0] * request.bins
        return {
            "bins": counts,
            "bin_width": request.bin_width,
            "samples": self.samples,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (shard wire + store memo)."""
        return {
            "schema": PARTIAL_SCHEMA,
            "kind": self.kind,
            "sessions": sorted(self.sessions),
            "counts": list(self.counts),
            "bin_width": self.bin_width,
            "samples": self.samples,
        }


def empty_partial(request: "AggregateRequest"):
    """The merge identity for a request's op."""
    if request.op == "histogram":
        return HistogramPartial(
            counts=tuple([0] * request.bins), bin_width=request.bin_width
        )
    return GroupedPartial()


def partial_from_dict(data: Mapping[str, Any]):
    """Rebuild a partial from its :meth:`to_dict` form (validating)."""
    if not isinstance(data, Mapping):
        raise PartialFormatError(
            f"partial must be a JSON object, got {type(data).__name__}"
        )
    if data.get("schema") != PARTIAL_SCHEMA:
        raise PartialFormatError(
            f"unknown partial schema {data.get('schema')!r} "
            f"(this build reads {PARTIAL_SCHEMA})"
        )
    kind = data.get("kind")
    try:
        if kind == "grouped":
            return GroupedPartial(
                groups={
                    str(group): {
                        str(session): float(value)
                        for session, value in per_session.items()
                    }
                    for group, per_session in dict(data["groups"]).items()
                },
                sessions=frozenset(str(s) for s in data["sessions"]),
            )
        if kind == "histogram":
            return HistogramPartial(
                counts=tuple(int(c) for c in data["counts"]),
                bin_width=float(data["bin_width"]),
                sessions=frozenset(str(s) for s in data["sessions"]),
                samples=int(data["samples"]),
            )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise PartialFormatError(f"malformed {kind!r} partial: {exc}") from exc
    raise PartialFormatError(f"unknown partial kind {kind!r}")


def merge_partials(partials: List[Any], request: "AggregateRequest"):
    """Fold a list of partials left-to-right from the identity.

    The result is independent of the list's order (the property the
    test suite pins); callers that need per-partial failure isolation
    merge incrementally instead.
    """
    merged = empty_partial(request)
    for partial in partials:
        merged = merged.merge(partial)
    return merged

"""Scatter-gather execution of one fleet aggregate.

:func:`run_aggregate` drives an :class:`AggregateRequest` against a
:class:`~repro.serve.service.ProfilingService`:

1. **select** — the session selector picks its fleet slice (sorted, so
   every downstream step is order-canonical);
2. **memo probe** — with an artifact store attached, each selected
   session's partial is looked up under
   ``refs/aggregate/<session-digest16>-<request-token16>`` — only
   *dirty* sessions (new content, new request shape) are recomputed;
3. **scatter** — misses are computed in-process (``workers <= 1``) or
   fanned shard-per-worker through the exec engine's process pool via
   the auxiliary ``aggregate`` experiment spec;
4. **gather** — partials merge pairwise (pure, associative; see
   :mod:`repro.aggregate.partial`) into the versioned
   ``repro.aggregate/1`` payload.

Failure contract (the chaos plane arms ``aggregate.dispatch`` and
``aggregate.merge``): a session whose partial cannot be computed or
merged is *excluded and named* — the payload carries
``partial: true`` plus the exact ``missing_sessions`` list and
per-session error texts.  A total can be incomplete, never silently
wrong.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..faults import (
    InjectedWorkerCrash,
    RetriesExhaustedError,
    fault_point,
    run_with_retry,
)
from ..store import CodecError, StoreError
from .compute import session_partial
from .partial import PartialFormatError, PartialMergeError, empty_partial, partial_from_dict
from .request import AGGREGATE_SCHEMA, AggregateRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serve.service import ProfilingService, SessionRecord

#: Store ref namespace memoized partials live under.
AGGREGATE_REF_NAMESPACE = "aggregate"

STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class AggregateResponse:
    """One answered (or refused) aggregate."""

    status: str
    request: AggregateRequest
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    latency_us: float = 0.0
    #: Provenance counters — deliberately *outside* the payload so the
    #: payload bytes stay identical across live / memoized / chaos runs.
    memoized: int = 0
    computed: int = 0
    shards: int = 0

    @property
    def ok(self) -> bool:
        """Whether the aggregate was answered."""
        return self.status == STATUS_OK

    @property
    def partial(self) -> bool:
        """Whether any selected session is missing from the answer."""
        return bool(self.payload and self.payload.get("partial"))

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (one JSONL line)."""
        data: Dict[str, Any] = {
            "status": self.status,
            "request": self.request.to_dict(),
            "latency_us": self.latency_us,
            "memoized": self.memoized,
            "computed": self.computed,
            "shards": self.shards,
        }
        if self.payload is not None:
            data["aggregate"] = self.payload
        if self.error is not None:
            data["error"] = self.error
        return data


@dataclass
class _Scatter:
    """Book-keeping for one aggregate's scatter phase."""

    partials: Dict[str, Any] = field(default_factory=dict)
    missing: Dict[str, str] = field(default_factory=dict)
    memoized: int = 0
    computed: int = 0
    shards: int = 0


def _session_digest(record: "SessionRecord") -> Optional[str]:
    """The content identity memoized partials key on (None: un-keyed)."""
    digest = getattr(record, "content_digest", None)
    return digest or None


def _memo_ref(digest: str, request: AggregateRequest) -> str:
    return f"{digest[:16]}-{request.cache_token()[:16]}"


def _probe_memo(
    service: "ProfilingService", request: AggregateRequest, names: List[str]
) -> Tuple[Dict[str, Any], List[str]]:
    """Load memoized partials; return (hits, still-to-compute)."""
    hits: Dict[str, Any] = {}
    to_compute: List[str] = []
    store = service.store
    if store is None:
        return hits, list(names)
    for name in names:
        digest = _session_digest(service.sessions[name])
        if digest is None:
            to_compute.append(name)
            continue
        memo_digest = store.get_ref(AGGREGATE_REF_NAMESPACE, _memo_ref(digest, request))
        if memo_digest is None or not store.has(memo_digest):
            to_compute.append(name)
            continue
        try:
            partial = partial_from_dict(store.get(memo_digest))
        except (StoreError, CodecError, PartialFormatError, OSError):
            # A corrupt memo degrades to a recompute, never an abort.
            store.evict(memo_digest)
            to_compute.append(name)
            continue
        if name not in partial.sessions:
            to_compute.append(name)  # memo for some other session shape
            continue
        hits[name] = partial
    return hits, to_compute


def _memoize(
    service: "ProfilingService",
    request: AggregateRequest,
    name: str,
    partial: Any,
) -> None:
    """Best-effort memo write (an optimisation, never a failure)."""
    store = service.store
    if store is None:
        return
    digest = _session_digest(service.sessions[name])
    if digest is None:
        return
    try:
        info = store.put(
            partial.to_dict(),
            "json",
            meta={"session": name, "request": request.cache_token()[:16]},
        )
        store.set_ref(AGGREGATE_REF_NAMESPACE, _memo_ref(digest, request), info.digest)
    except (StoreError, OSError):
        pass


def _compute_local(
    service: "ProfilingService",
    request: AggregateRequest,
    names: List[str],
    scatter: _Scatter,
) -> None:
    """In-process scatter: one retried dispatch per session."""
    for name in names:
        record = service.sessions[name]

        def _attempt(record=record, name=name):
            fault_point("aggregate.dispatch")
            return session_partial(name, record.analyzer, request)

        try:
            partial = run_with_retry(
                _attempt, site="aggregate.dispatch", retry_on=(OSError,)
            )
        except (RetriesExhaustedError, StoreError, InjectedWorkerCrash) as exc:
            scatter.missing[name] = f"{type(exc).__name__}: {exc}"
            continue
        scatter.partials[name] = partial
        scatter.computed += 1
        _memoize(service, request, name, partial)


def _compute_sharded(
    service: "ProfilingService",
    request: AggregateRequest,
    names: List[str],
    scatter: _Scatter,
) -> None:
    """Fan misses out shard-per-worker through the exec engine."""
    from ..exec.engine import EngineConfig, ExperimentEngine

    by_shard: Dict[int, List[str]] = {}
    for name in names:
        by_shard.setdefault(service.shard_of(name), []).append(name)

    requests = []
    shard_names: List[List[str]] = []
    for shard in sorted(by_shard):
        members = by_shard[shard]
        try:
            traces = {
                name: service.sessions[name].trace_json for name in members
            }
        except (RetriesExhaustedError, StoreError, OSError) as exc:
            # A spilled trace would not come back: this shard's sessions
            # are missing (named), the other shards still dispatch.
            for name in members:
                scatter.missing[name] = f"{type(exc).__name__}: {exc}"
            continue
        requests.append(
            ("aggregate", {"traces": traces, "request": request.to_dict()})
        )
        shard_names.append(members)
    if not requests:
        return
    scatter.shards = len(requests)
    engine = ExperimentEngine(
        EngineConfig(parallel=service.config.workers, use_cache=False)
    )

    def _dispatch():
        fault_point("aggregate.dispatch")
        return engine.run(requests)

    try:
        run = run_with_retry(
            _dispatch, site="aggregate.dispatch", retry_on=(OSError,)
        )
    except (RetriesExhaustedError, InjectedWorkerCrash) as exc:
        for members in shard_names:
            for name in members:
                scatter.missing[name] = f"{type(exc).__name__}: {exc}"
        return
    for members, result in zip(shard_names, run.results):
        metrics = result.outcome.metrics or {}
        partials = metrics.get("partials")
        if partials is None:  # the whole shard job failed
            reason = result.outcome.error or "aggregate shard worker failed"
            for name in members:
                scatter.missing[name] = reason
            continue
        errors = metrics.get("errors", {})
        for name in members:
            raw = partials.get(name)
            if raw is None:
                scatter.missing[name] = errors.get(
                    name, "shard worker returned no partial"
                )
                continue
            try:
                partial = partial_from_dict(raw)
            except PartialFormatError as exc:
                scatter.missing[name] = f"PartialFormatError: {exc}"
                continue
            scatter.partials[name] = partial
            scatter.computed += 1
            _memoize(service, request, name, partial)


def _gather(
    request: AggregateRequest, scatter: _Scatter
) -> Tuple[Any, List[str]]:
    """Merge partials in canonical session order; retried per merge."""
    merged = empty_partial(request)
    included: List[str] = []
    for name in sorted(scatter.partials):
        partial = scatter.partials[name]

        def _attempt(partial=partial, merged_so_far=None):
            fault_point("aggregate.merge")
            return (merged if merged_so_far is None else merged_so_far).merge(partial)

        try:
            merged = run_with_retry(
                _attempt, site="aggregate.merge", retry_on=(OSError,)
            )
        except (
            RetriesExhaustedError,
            InjectedWorkerCrash,
            PartialMergeError,
        ) as exc:
            scatter.missing[name] = f"{type(exc).__name__}: {exc}"
            continue
        included.append(name)
    return merged, included


def run_aggregate(
    service: "ProfilingService", request: AggregateRequest
) -> AggregateResponse:
    """Answer one fleet aggregate against a service's sessions."""
    started = time.perf_counter()
    names = request.select(service.sessions)
    _publish_issued(service, request, len(names))

    scatter = _Scatter()
    hits, to_compute = _probe_memo(service, request, names)
    scatter.partials.update(hits)
    scatter.memoized = len(hits)
    for name in hits:
        _publish_partial(service, name, memoized=True)

    if to_compute:
        if service.config.workers > 1 and len(to_compute) > 1:
            _compute_sharded(service, request, to_compute, scatter)
        else:
            _compute_local(service, request, to_compute, scatter)
        for name in to_compute:
            if name in scatter.partials:
                _publish_partial(service, name, memoized=False)

    merged, included = _gather(request, scatter)
    payload: Dict[str, Any] = {
        "schema": AGGREGATE_SCHEMA,
        "request": request.to_dict(),
        "sessions": included,
        "missing_sessions": sorted(scatter.missing),
        "partial": bool(scatter.missing),
        "result": merged.finalize(request),
    }
    if scatter.missing:
        payload["errors"] = {
            name: scatter.missing[name] for name in sorted(scatter.missing)
        }
    _publish_merged(service, request, len(included), len(scatter.missing))
    return AggregateResponse(
        status=STATUS_OK,
        request=request,
        payload=payload,
        latency_us=(time.perf_counter() - started) * 1e6,
        memoized=scatter.memoized,
        computed=scatter.computed,
        shards=scatter.shards,
    )


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def _publish_issued(
    service: "ProfilingService", request: AggregateRequest, selected: int
) -> None:
    if service.bus is None:
        return
    from ..telemetry import AggregateIssuedEvent

    service.bus.publish(
        AggregateIssuedEvent(
            time=0.0,
            backend=request.backend,
            op=request.op,
            group_by=request.group_by,
            sessions=selected,
        )
    )


def _publish_partial(
    service: "ProfilingService", session: str, memoized: bool
) -> None:
    if service.bus is None:
        return
    from ..telemetry import AggregatePartialEvent

    service.bus.publish(
        AggregatePartialEvent(time=0.0, session=session, memoized=memoized)
    )


def _publish_merged(
    service: "ProfilingService",
    request: AggregateRequest,
    merged: int,
    missing: int,
) -> None:
    if service.bus is None:
        return
    from ..telemetry import AggregateMergedEvent

    service.bus.publish(
        AggregateMergedEvent(
            time=0.0,
            op=request.op,
            merged=merged,
            missing=missing,
            partial=missing > 0,
        )
    )

"""Attack #2 — trigger background apps.

"When malware is launched, malware can open other apps concurrently and
make them run in background ... triggering background apps is a very
effective way to drain battery" (§III-B).  The payload starts each
victim's activity, then immediately covers it with the next one (and
finally with its own UI), leaving every victim paused/stopped in the
background where it keeps draining — charged to the victims by every
baseline profiler.
"""

from __future__ import annotations

from typing import Tuple

from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..apps.demo import VICTIM_PACKAGE
from .base import MalwareService, build_malware_app

BACKGROUND_PACKAGE = "com.fun.wallpaper"  # camouflage


class BackgroundService(MalwareService):
    """Opens victims concurrently, then buries them in the background."""

    #: (package, launcher activity) victims to open.
    targets: Tuple[Tuple[str, str], ...] = (
        (VICTIM_PACKAGE, "VictimMainActivity"),
    )

    def run_payload(self, intent: Intent) -> None:
        assert self.context is not None
        for package, activity in self.targets:
            self.context.start_activity(
                Intent(component=ComponentName(package, activity))
            )
        # Cover everything with the malware's own (idle) UI so each
        # victim drops to the background.
        self.context.start_activity(
            Intent(
                component=ComponentName(self.context.package, "MalwareMainActivity")
            )
        )


def build_background_malware(
    targets: Tuple[Tuple[str, str], ...] = BackgroundService.targets,
) -> App:
    """Attack #2 malware for the given victim list (no permissions)."""

    class ConfiguredBackgroundService(BackgroundService):
        pass

    ConfiguredBackgroundService.targets = targets
    return build_malware_app(
        BACKGROUND_PACKAGE, ConfiguredBackgroundService, permissions=()
    )

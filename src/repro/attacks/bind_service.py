"""Attack #3 — bind to services without unbinding.

"An exported service bound by malware will keep alive infinitely and
drain battery even after the victim attempts to stop the service"
(§III-B).  The payload polls for the victim's service to come up ("it
binds the victim's service once it detects the service is started",
§VI-A) and then binds without ever unbinding; the bound connection
defeats the victim's ``stopService``/``stopSelf``.
"""

from __future__ import annotations

from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..apps.demo import VICTIM_PACKAGE
from .base import MalwareService, build_malware_app

BIND_PACKAGE = "com.fun.cleaner"  # camouflage


class BindService(MalwareService):
    """Watches for the victim service, binds, and never unbinds."""

    victim_package: str = VICTIM_PACKAGE
    victim_service: str = "VictimWorkService"
    #: Give up polling after this long (0 disables the payload timer).
    watch_duration_s: float = 3600.0

    def __init__(self) -> None:
        super().__init__()
        self.connection = None
        self._elapsed = 0.0

    def run_payload(self, intent: Intent) -> None:
        self._poll()

    def _poll(self) -> None:
        assert self.context is not None
        if self.connection is not None:
            return
        record = self.context.system.am.service_record(
            self.victim_package, self.victim_service
        )
        if record is not None:
            self.connection = self.context.bind_service(
                Intent(
                    component=ComponentName(self.victim_package, self.victim_service)
                )
            )
            return
        self._elapsed += self.poll_interval_s
        if self._elapsed < self.watch_duration_s:
            self.context.schedule(self.poll_interval_s, self._poll, name="bind-poll")


def build_bind_malware(
    victim_package: str = VICTIM_PACKAGE, victim_service: str = "VictimWorkService"
) -> App:
    """Attack #3 malware (no permissions: the service is exported)."""

    class ConfiguredBindService(BindService):
        pass

    ConfiguredBindService.victim_package = victim_package
    ConfiguredBindService.victim_service = victim_service
    return build_malware_app(BIND_PACKAGE, ConfiguredBindService, permissions=())

"""Attack #5 — drain energy through screen configuration.

"Malware could change the screen setting in background ... to avoid
being noticed, malware could secretly escalate the brightness with a few
levels" (§III-B).  Needs WRITE_SETTINGS.  Because "a service might not
be able to set window attributes and the change may not be in effect
immediately" (§V), the payload launches a transparent self-closing
activity that commits the settings change while briefly foreground:

* in manual mode, it raises the brightness by ``delta_levels``;
* in auto mode, it reads the current auto-set value, stores a higher
  one, and flips the mode to manual — "camouflag[ing] as Android auto
  screen settings".
"""

from __future__ import annotations

from ..android.activity import Activity
from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..android.manifest import ComponentDecl, ComponentKind, WRITE_SETTINGS
from ..android.settings import (
    BRIGHTNESS_MODE_MANUAL,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
)
from .base import MalwareService, build_malware_app

BRIGHTNESS_PACKAGE = "com.fun.torch"  # camouflage

#: Default stealth escalation: a few of Android's 256 levels at a time.
DEFAULT_DELTA_LEVELS = 40


class SelfCloseActivity(Activity):
    """Transparent one-frame activity that applies the brightness bump."""

    transparent = True
    delta_levels: int = DEFAULT_DELTA_LEVELS
    target_level: int = 0  # 0 = relative bump; >0 = absolute target

    def on_resume(self) -> None:
        context = self.context
        assert context is not None
        display = context.system.display
        if display.is_auto_mode:
            # Camouflage path: raise above the current auto-set value,
            # then make it effective by switching to manual.
            base = display.auto_brightness
            level = self.target_level or min(255, base + self.delta_levels)
            context.put_setting(SCREEN_BRIGHTNESS, level)
            context.put_setting(SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_MANUAL)
        else:
            base = int(context.get_setting(SCREEN_BRIGHTNESS, 102))
            level = self.target_level or min(255, base + self.delta_levels)
            context.put_setting(SCREEN_BRIGHTNESS, level)
        self.finish()


class BrightnessService(MalwareService):
    """Posts the transparent self-close activity from the background."""

    def run_payload(self, intent: Intent) -> None:
        assert self.context is not None
        self.context.start_activity(
            Intent(
                component=ComponentName(self.context.package, "SelfCloseActivity")
            )
        )


def build_brightness_malware(
    delta_levels: int = DEFAULT_DELTA_LEVELS, target_level: int = 0
) -> App:
    """Attack #5 malware (requires WRITE_SETTINGS)."""

    class ConfiguredSelfClose(SelfCloseActivity):
        pass

    ConfiguredSelfClose.delta_levels = delta_levels
    ConfiguredSelfClose.target_level = target_level
    return build_malware_app(
        BRIGHTNESS_PACKAGE,
        BrightnessService,
        permissions=(WRITE_SETTINGS,),
        extra_components=(
            ComponentDecl(
                name="SelfCloseActivity",
                kind=ComponentKind.ACTIVITY,
                exported=False,
                transparent=True,
            ),
        ),
        extra_classes={"SelfCloseActivity": ConfiguredSelfClose},
    )

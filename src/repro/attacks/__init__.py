"""The paper's six collateral energy attacks plus multi/hybrid variants."""

from .background import BACKGROUND_PACKAGE, BackgroundService, build_background_malware
from .base import (
    AutoStartReceiver,
    MalwareMainActivity,
    MalwareService,
    build_malware_app,
    build_malware_manifest,
)
from .bind_service import BIND_PACKAGE, BindService, build_bind_malware
from .brightness import (
    BRIGHTNESS_PACKAGE,
    DEFAULT_DELTA_LEVELS,
    BrightnessService,
    SelfCloseActivity,
    build_brightness_malware,
)
from .gps_hog import GPS_HOG_PACKAGE, GpsHogService, build_gps_hog_malware
from .hijack import HIJACK_PACKAGE, HijackService, build_hijack_malware
from .hybrid import (
    HYBRID_PACKAGE,
    MULTI_PACKAGE,
    RELAY_B_PACKAGE,
    RELAY_C_PACKAGE,
    build_hybrid_malware,
    build_multi_malware,
    build_relay_b,
    build_relay_c,
)
from .interrupt import (
    INTERRUPT_PACKAGE,
    CoverActivity,
    InterruptService,
    build_interrupt_malware,
)
from .wakelock import WAKELOCK_PACKAGE, WakelockService, build_wakelock_malware

__all__ = [
    "build_hijack_malware",
    "build_gps_hog_malware",
    "GpsHogService",
    "GPS_HOG_PACKAGE",
    "build_background_malware",
    "build_bind_malware",
    "build_interrupt_malware",
    "build_brightness_malware",
    "build_wakelock_malware",
    "build_multi_malware",
    "build_hybrid_malware",
    "build_relay_b",
    "build_relay_c",
    "build_malware_app",
    "build_malware_manifest",
    "MalwareService",
    "MalwareMainActivity",
    "AutoStartReceiver",
    "HijackService",
    "BackgroundService",
    "BindService",
    "InterruptService",
    "CoverActivity",
    "BrightnessService",
    "SelfCloseActivity",
    "WakelockService",
    "HIJACK_PACKAGE",
    "BACKGROUND_PACKAGE",
    "BIND_PACKAGE",
    "INTERRUPT_PACKAGE",
    "BRIGHTNESS_PACKAGE",
    "WAKELOCK_PACKAGE",
    "MULTI_PACKAGE",
    "HYBRID_PACKAGE",
    "RELAY_B_PACKAGE",
    "RELAY_C_PACKAGE",
    "DEFAULT_DELTA_LEVELS",
]

"""Extension attack — GPS hogging through an exported navigation service.

Not one of the paper's six, but a direct corollary of its attack-vector
analysis: attack #3's bind-without-unbind pattern pointed at a *GPS* hog
instead of a CPU hog.  The Maps app's exported ``NavigationService``
holds the 430 mW GPS receiver while alive; malware binding it without
unbinding burns ~1.5 kJ/hour on the Maps app's ledger.  Included to
demonstrate the attack pattern generalises across hardware components
(and that E-Android's accounting needs no per-component special cases).
"""

from __future__ import annotations

from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..apps.extras import MAPS_PACKAGE
from .base import MalwareService, build_malware_app

GPS_HOG_PACKAGE = "com.fun.unitconverter"  # camouflage


class GpsHogService(MalwareService):
    """Binds the navigation service once and keeps the handle forever."""

    victim_package: str = MAPS_PACKAGE
    victim_service: str = "NavigationService"

    def __init__(self) -> None:
        super().__init__()
        self.connection = None

    def run_payload(self, intent: Intent) -> None:
        assert self.context is not None
        self.connection = self.context.bind_service(
            Intent(
                component=ComponentName(self.victim_package, self.victim_service)
            )
        )


def build_gps_hog_malware() -> App:
    """The GPS-hog malware (no permissions: the service is exported)."""
    return build_malware_app(GPS_HOG_PACKAGE, GpsHogService, permissions=())

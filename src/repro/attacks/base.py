"""Shared malware scaffolding.

Every attack app in this package follows the paper's §V implementation
notes: it camouflages as a useful tool (benign-looking package name and
category), sets FLAG_EXCLUDE_FROM_RECENTS so it hides from the recents
list, and registers a manifest receiver on ACTION_USER_PRESENT so it
auto-launches its payload service when the user unlocks the screen.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..android.activity import Activity
from ..android.app import App
from ..android.intent import (
    ACTION_USER_PRESENT,
    ComponentName,
    Intent,
)
from ..android.manifest import (
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
    launcher_filter,
)
from ..android.receiver import BroadcastReceiver
from ..android.service import Service


class MalwareMainActivity(Activity):
    """Innocent-looking launcher activity: starts the payload and bows out."""

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.start_service(
            Intent(
                component=ComponentName(self.context.package, "MalwareService")
            )
        )


class AutoStartReceiver(BroadcastReceiver):
    """Launches the payload whenever the user unlocks the device (§V)."""

    def on_receive(self, intent: Intent) -> None:
        assert self.context is not None
        self.context.start_service(
            Intent(component=ComponentName(self.context.package, "MalwareService"))
        )


def build_malware_manifest(
    package: str,
    permissions: Tuple[str, ...],
    extra_components: Tuple[ComponentDecl, ...] = (),
) -> AndroidManifest:
    """Manifest template shared by every attack app."""
    return AndroidManifest(
        package=package,
        category="tools",  # camouflaged as a useful tool (§III-B)
        uses_permissions=frozenset(permissions),
        components=(
            ComponentDecl(
                name="MalwareMainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="MalwareService",
                kind=ComponentKind.SERVICE,
                exported=False,
            ),
            ComponentDecl(
                name="AutoStartReceiver",
                kind=ComponentKind.RECEIVER,
                exported=True,
                intent_filters=(
                    IntentFilterDecl(actions=frozenset({ACTION_USER_PRESENT})),
                ),
            ),
        )
        + extra_components,
    )


def build_malware_app(
    package: str,
    service_class: type,
    permissions: Tuple[str, ...],
    extra_components: Tuple[ComponentDecl, ...] = (),
    extra_classes: Optional[Dict[str, type]] = None,
) -> App:
    """Assemble a malware app around its payload service class."""
    classes: Dict[str, type] = {
        "MalwareMainActivity": MalwareMainActivity,
        "MalwareService": service_class,
        "AutoStartReceiver": AutoStartReceiver,
    }
    if extra_classes:
        classes.update(extra_classes)
    return App(
        build_malware_manifest(package, permissions, extra_components), classes
    )


class MalwareService(Service):
    """Base payload service; subclasses implement :meth:`run_payload`."""

    #: Polling interval for payloads that watch system state.
    poll_interval_s: float = 0.5
    #: Fire the payload only on the first start (several triggers —
    #: launcher tap, unlock broadcast — may hit the same service).
    run_once: bool = True

    def __init__(self) -> None:
        super().__init__()
        self._payload_fired = False

    def on_start_command(self, intent: Intent) -> None:
        if self.run_once and self._payload_fired:
            return
        self._payload_fired = True
        self.run_payload(intent)

    def run_payload(self, intent: Intent) -> None:
        """Launch the attack (override)."""

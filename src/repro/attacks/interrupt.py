"""Attack #4 — interrupt the victim to the background at quit time.

The paper's most elaborate malware (§V): the victim only releases its
screen wakelock in ``onDestroy``; most apps confirm exit with a dialog
on the root activity.  The malware

1. polls SurfaceFlinger's shared virtual-memory size — the UI-inference
   side channel — until it recognises the victim's exit dialog;
2. covers the dialog with a *transparent* activity;
3. when the user taps where "OK" sits, the tap lands on the cover, which
   starts the home UI and finishes itself.

The user saw the app "close"; in reality it only reached ``onStop``, so
the wakelock stays held, the screen stays on, and every baseline
profiler taxes the *victim* (or the foreground app) for the burn.
"""

from __future__ import annotations

from ..android.activity import Activity
from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..android.manifest import ComponentDecl, ComponentKind
from ..android.surfaceflinger import SurfaceFlinger
from ..apps.demo import VICTIM_PACKAGE
from .base import MalwareService, build_malware_app

INTERRUPT_PACKAGE = "com.fun.compass"  # camouflage
LAUNCHER_PACKAGE = "com.android.launcher"


class CoverActivity(Activity):
    """The transparent overlay placed over the victim's exit dialog."""

    transparent = True

    def on_dialog_ok(self) -> None:
        """The user's OK tap, hijacked by the cover.

        "Malware sends an intent to start home UI" (§V) — a plain
        exported-activity start needing no permission — then removes the
        cover so "the user feels no difference".
        """
        assert self.context is not None
        self.context.start_activity(
            Intent(component=ComponentName(LAUNCHER_PACKAGE, "HomeActivity"))
        )
        self.finish()


class InterruptService(MalwareService):
    """Watches the shared-VM side channel for the victim's exit dialog."""

    victim_package: str = VICTIM_PACKAGE
    victim_root_activity: str = "VictimMainActivity"
    exit_dialog_name: str = "exit"
    watch_duration_s: float = 3600.0

    def __init__(self) -> None:
        super().__init__()
        self._elapsed = 0.0
        # Precomputed offline by reverse-engineering the victim (§III-B).
        self._dialog_signature = SurfaceFlinger.expected_size_for(
            self.victim_package, self.victim_root_activity, self.exit_dialog_name
        )

    def run_payload(self, intent: Intent) -> None:
        self._poll()

    def _poll(self) -> None:
        assert self.context is not None
        size = self.context.system.surfaceflinger.shared_vm_size_kib()
        if size == self._dialog_signature:
            # Exit dialog detected: cover it with the transparent page.
            self.context.start_activity(
                Intent(
                    component=ComponentName(self.context.package, "CoverActivity")
                )
            )
            return
        self._elapsed += self.poll_interval_s
        if self._elapsed < self.watch_duration_s:
            self.context.schedule(
                self.poll_interval_s, self._poll, name="surfaceflinger-poll"
            )


def build_interrupt_malware(
    victim_package: str = VICTIM_PACKAGE,
    victim_root_activity: str = "VictimMainActivity",
) -> App:
    """Attack #4 malware (no permissions; the side channel is free)."""

    class ConfiguredInterruptService(InterruptService):
        pass

    ConfiguredInterruptService.victim_package = victim_package
    ConfiguredInterruptService.victim_root_activity = victim_root_activity
    return build_malware_app(
        INTERRUPT_PACKAGE,
        ConfiguredInterruptService,
        permissions=(),
        extra_components=(
            ComponentDecl(
                name="CoverActivity",
                kind=ComponentKind.ACTIVITY,
                exported=False,
                transparent=True,
            ),
        ),
        extra_classes={"CoverActivity": CoverActivity},
    )

"""Attack #1 — component hijacking through IPC.

"Malware hijacks components belonging to other apps ... malware could
choose the energy hog component to launch an attack" (§III-B).  The
payload fires an intent at the Camera app's exported video-capture
activity — a long recording whose camera+CPU energy lands on the Camera
in every baseline profiler, while the malware's own ledger stays clean.
No permissions are needed: the component is exported.
"""

from __future__ import annotations

from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..apps.demo import CAMERA_PACKAGE
from .base import MalwareService, build_malware_app

HIJACK_PACKAGE = "com.fun.flashlight"  # camouflage


class HijackService(MalwareService):
    """Starts the victim's energy-hog component with a long workload."""

    #: How long a recording the hijacked component is asked for.
    record_duration_s: float = 300.0
    #: The hijacked component; defaults to the Camera's capture activity.
    target = ComponentName(CAMERA_PACKAGE, "RecordVideoActivity")

    def run_payload(self, intent: Intent) -> None:
        assert self.context is not None
        hijack = Intent(component=self.target)
        hijack.extras["duration_s"] = self.record_duration_s
        self.context.start_activity(hijack)


def build_hijack_malware() -> App:
    """Attack #1 malware: needs no permissions at all."""
    return build_malware_app(HIJACK_PACKAGE, HijackService, permissions=())

"""Multi- and hybrid collateral attacks (§III-B, Figs. 6-7).

* **Multi-collateral** (Fig. 6): one malware mounts several simultaneous
  attacks — bind, start, interrupt — on the *same* victim.  E-Android
  must charge the union of the windows, not the sum.
* **Hybrid chain** (Fig. 7): the attack spreads across apps — A binds a
  service of B, B starts an activity of C, C changes the brightness —
  and the root of the chain is charged for everything downstream.

The chain's middle/leaf apps here are *relay* apps whose components
genuinely (if naively) perform the next step, matching the paper's note
that chains arise "in both malware and legitimate apps".
"""

from __future__ import annotations

from ..android.activity import Activity
from ..android.app import App
from ..android.intent import ComponentName, Intent
from ..android.manifest import (
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    WRITE_SETTINGS,
)
from ..android.service import Service
from ..android.settings import SCREEN_BRIGHTNESS
from ..apps.demo import VICTIM_PACKAGE
from .base import MalwareService, build_malware_app

MULTI_PACKAGE = "com.fun.stepcounter"
RELAY_B_PACKAGE = "com.chain.relayb"
RELAY_C_PACKAGE = "com.chain.relayc"


# ----------------------------------------------------------------------
# Multi-collateral attack (Fig. 6)
# ----------------------------------------------------------------------
class MultiAttackService(MalwareService):
    """Binds + starts + interrupts the same victim concurrently."""

    victim_package: str = VICTIM_PACKAGE

    def __init__(self) -> None:
        super().__init__()
        self.connection = None

    def run_payload(self, intent: Intent) -> None:
        context = self.context
        assert context is not None
        service = ComponentName(self.victim_package, "VictimWorkService")
        # Bind and start the victim's service...
        self.connection = context.bind_service(Intent(component=service))
        context.start_service(Intent(component=service))
        # ...start the victim's activity...
        context.start_activity(
            Intent(component=ComponentName(self.victim_package, "VictimMainActivity"))
        )
        # ...then interrupt it straight back to the background with the
        # malware's own UI.
        context.start_activity(
            Intent(
                component=ComponentName(context.package, "MalwareMainActivity")
            )
        )


def build_multi_malware(victim_package: str = VICTIM_PACKAGE) -> App:
    """Fig. 6 malware."""

    class ConfiguredMultiService(MultiAttackService):
        pass

    ConfiguredMultiService.victim_package = victim_package
    return build_malware_app(MULTI_PACKAGE, ConfiguredMultiService, permissions=())


# ----------------------------------------------------------------------
# Hybrid chain (Fig. 7): A --bind--> B --start--> C --brightness--> screen
# ----------------------------------------------------------------------
class RelayBService(Service):
    """B's exported service: when bound, it starts C's activity."""

    def on_bind(self, intent: Intent) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.10)
        self.context.start_activity(
            Intent(component=ComponentName(RELAY_C_PACKAGE, "RelayCActivity"))
        )

    def on_destroy(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.0)


class RelayCActivity(Activity):
    """C's exported activity: stealthily raises the brightness."""

    brightness_level: int = 255

    def on_resume(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.15)
        self.context.put_setting(SCREEN_BRIGHTNESS, self.brightness_level)

    def on_pause(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.05)

    def on_destroy(self) -> None:
        assert self.context is not None
        self.context.set_cpu_load(0.0)


def build_relay_b() -> App:
    """Chain middleman B."""
    manifest = AndroidManifest(
        package=RELAY_B_PACKAGE,
        category="productivity",
        components=(
            ComponentDecl(
                name="RelayBService", kind=ComponentKind.SERVICE, exported=True
            ),
        ),
    )
    return App(manifest, {"RelayBService": RelayBService})


def build_relay_c() -> App:
    """Chain leaf C (holds WRITE_SETTINGS)."""
    manifest = AndroidManifest(
        package=RELAY_C_PACKAGE,
        category="personalization",
        uses_permissions=frozenset({WRITE_SETTINGS}),
        components=(
            ComponentDecl(
                name="RelayCActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                transparent=True,
            ),
        ),
    )
    return App(manifest, {"RelayCActivity": RelayCActivity})


class HybridChainService(MalwareService):
    """A's payload: a single bind that sets the whole chain in motion."""

    def __init__(self) -> None:
        super().__init__()
        self.connection = None

    def run_payload(self, intent: Intent) -> None:
        assert self.context is not None
        self.connection = self.context.bind_service(
            Intent(component=ComponentName(RELAY_B_PACKAGE, "RelayBService"))
        )


HYBRID_PACKAGE = "com.fun.weatherpro"


def build_hybrid_malware() -> App:
    """Fig. 7 chain root A."""
    return build_malware_app(HYBRID_PACKAGE, HybridChainService, permissions=())

"""Attack #6 — acquire a screen wakelock without releasing.

"Malware could easily keep screen on by intentionally acquiring but not
releasing the wakelock.  The wakelock could even be acquired by
services.  The consumed screen energy will be wrongly attributed to the
foreground app or Android launcher, rather than malware" (§III-B).
Needs WAKE_LOCK.
"""

from __future__ import annotations

from ..android.app import App
from ..android.intent import Intent
from ..android.manifest import WAKE_LOCK
from ..android.power_manager import SCREEN_BRIGHT_WAKE_LOCK
from .base import MalwareService, build_malware_app

WAKELOCK_PACKAGE = "com.fun.qrscanner"  # camouflage


class WakelockService(MalwareService):
    """Acquires a screen-bright wakelock from the background, forever."""

    lock_type: str = SCREEN_BRIGHT_WAKE_LOCK

    def __init__(self) -> None:
        super().__init__()
        self.lock = None

    def run_payload(self, intent: Intent) -> None:
        assert self.context is not None
        if self.lock is None or not self.lock.held:
            self.lock = self.context.acquire_wakelock(self.lock_type, "sync")
        # No release() anywhere — the whole attack.


def build_wakelock_malware() -> App:
    """Attack #6 malware (requires WAKE_LOCK)."""
    return build_malware_app(
        WAKELOCK_PACKAGE, WakelockService, permissions=(WAKE_LOCK,)
    )

"""Export helpers: battery reports, drain curves, attack logs, and
telemetry streams to JSON/CSV for downstream analysis or plotting
outside the simulator.

The telemetry exporters (Chrome trace-event JSON, JSONL, metrics
summary) live in :mod:`repro.telemetry.export` and are re-exported here
so every file-producing helper is importable from one place.
"""

from __future__ import annotations

import csv
import io
import json
import warnings
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from .accounting.base import ProfilerReport
from .reports.view import ProfilerReportView
from .core.accounting import EAndroidAccounting
from .core.links import SCREEN_TARGET
from .power.battery import BatterySample
from .telemetry.export import (  # noqa: F401 - re-exported telemetry exporters
    chrome_trace_json,
    events_to_jsonl,
    metrics_summary,
    render_metrics_text,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# profiler reports
# ----------------------------------------------------------------------
_warned_report_to_dict = False


def _backend_for(report: ProfilerReport) -> str:
    """Best-effort backend name for a bare report (shim use only)."""
    profiler = report.profiler
    if profiler.startswith("BatteryStats"):
        return "batterystats"
    if profiler.startswith("PowerTutor"):
        return "powertutor"
    if profiler.startswith("E-Android"):
        return "eandroid"
    if profiler.startswith("Collateral"):
        return "collateral"
    return "energy"


def report_to_dict(report: ProfilerReport) -> Dict[str, Any]:
    """Deprecated: a profiler report as plain JSON-ready data.

    Thin shim over :meth:`repro.reports.ProfilerReportView.to_dict` —
    the unified Report API's wire form.  Emits one
    :class:`DeprecationWarning` per process; new code should go through
    ``profiler.report_view(...)`` / ``analyzer.describe(...)`` instead.
    Output is byte-identical to ``ReportView.to_dict()`` (regression
    tested).
    """
    global _warned_report_to_dict
    if not _warned_report_to_dict:
        _warned_report_to_dict = True
        warnings.warn(
            "report_to_dict() is deprecated; use "
            "repro.reports.ProfilerReportView.to_dict() (the unified "
            "Report API) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return ProfilerReportView(backend=_backend_for(report), report=report).to_dict()


def report_to_json(report: ProfilerReport, indent: int = 2) -> str:
    """A profiler report serialised to JSON text."""
    return json.dumps(report_to_dict(report), indent=indent)


def report_to_csv(report: ProfilerReport) -> str:
    """A profiler report as CSV (one row per entry)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["label", "uid", "energy_j", "own_energy_j", "collateral_j", "percent"]
    )
    for entry in report.entries:
        writer.writerow(
            [
                entry.label,
                entry.uid if entry.uid is not None else "",
                f"{entry.energy_j:.6f}",
                f"{entry.own_energy_j:.6f}",
                f"{sum(entry.collateral_j.values()):.6f}",
                f"{entry.percent:.3f}",
            ]
        )
    return buffer.getvalue()


# ----------------------------------------------------------------------
# battery curves
# ----------------------------------------------------------------------
def battery_curve_to_csv(samples: Sequence[BatterySample]) -> str:
    """A discharge curve as CSV (hours, percent)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["hours", "percent"])
    for sample in samples:
        writer.writerow([f"{sample.time_s / 3600.0:.4f}", f"{sample.percent:.3f}"])
    return buffer.getvalue()


# ----------------------------------------------------------------------
# attack logs
# ----------------------------------------------------------------------
def attack_log_to_dicts(
    accounting: EAndroidAccounting, label_for_uid=None
) -> List[Dict[str, Any]]:
    """The full attack-link history as JSON-ready rows."""
    rows = []
    for link in accounting.attack_log():
        target: Any = link.target
        if target == SCREEN_TARGET:
            target = "screen"
        elif label_for_uid is not None:
            target = label_for_uid(link.target)
        driving: Any = link.driving_uid
        if label_for_uid is not None:
            driving = label_for_uid(link.driving_uid)
        rows.append(
            {
                "link_id": link.link_id,
                "kind": link.kind.value,
                "driving": driving,
                "target": target,
                "begin_s": link.begin_time,
                "end_s": link.end_time,
                "alive": link.alive,
                "detail": link.detail,
            }
        )
    return rows


def attack_log_to_json(
    accounting: EAndroidAccounting, label_for_uid=None, indent: int = 2
) -> str:
    """The attack-link history as JSON text."""
    return json.dumps(
        attack_log_to_dicts(accounting, label_for_uid), indent=indent
    )


# ----------------------------------------------------------------------
# device traces
# ----------------------------------------------------------------------
def save_trace(trace, path: PathLike, binary=None) -> Path:
    """Write a :class:`~repro.offline.DeviceTrace` to disk.

    Format defaults from the suffix (``.bin``/``.rtb`` → the columnar
    binary format, else JSON); pass ``binary`` to override.  Parent
    directories are created.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return trace.save(target, binary=binary)


def load_trace(path: PathLike):
    """Read a :class:`~repro.offline.DeviceTrace` in either format."""
    from .offline.trace import DeviceTrace

    return DeviceTrace.load(path)


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def save_text(path: PathLike, content: str) -> Path:
    """Write text to a file, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content, encoding="utf-8")
    return target


def save_report(
    report: ProfilerReport, directory: PathLike, stem: str = "report"
) -> Dict[str, Path]:
    """Write a report as both JSON and CSV; returns the written paths."""
    base = Path(directory)
    return {
        "json": save_text(base / f"{stem}.json", report_to_json(report)),
        "csv": save_text(base / f"{stem}.csv", report_to_csv(report)),
    }

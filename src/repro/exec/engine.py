"""The parallel experiment-execution engine.

Each experiment owns its own :class:`~repro.sim.kernel.Kernel`, so the
evaluation is embarrassingly parallel: the engine fans independent
experiments out over a ``ProcessPoolExecutor`` (``parallel`` workers),
consults the on-disk :class:`~repro.exec.cache.ResultCache` before
simulating anything, retries crashed workers a bounded number of times,
and surfaces unrecoverable failures as ``DEVIATION`` outcomes instead of
aborting the whole run.

Results come back in request order regardless of completion order, so
serial and parallel runs render identically.

Typical use::

    from repro.exec import EngineConfig, ExperimentEngine

    engine = ExperimentEngine(EngineConfig(parallel=4))
    run = engine.run([("fig1", {}), ("fig10", {"iterations": 10})])
    for outcome in run.outcomes():
        print(outcome.status, outcome.name)
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..experiments.registry import (
    ExperimentOutcome,
    get_spec,
    load_registry,
    outcome_from_result,
)
from .cache import CacheStats, PathLike, ResultCache

ExperimentRequest = Union[str, Tuple[str, Dict[str, Any]]]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for one engine instance."""

    parallel: int = 1
    cache_dir: Optional[PathLike] = None
    use_cache: bool = True
    refresh: bool = False
    retries: int = 1  # extra attempts after a worker failure
    telemetry: bool = False  # collect per-experiment event-bus stats
    verbose: bool = False  # print cache-corruption warnings to stderr

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for the run manifest)."""
        return {
            "parallel": self.parallel,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "use_cache": self.use_cache,
            "refresh": self.refresh,
            "retries": self.retries,
            "telemetry": self.telemetry,
            "verbose": self.verbose,
        }


@dataclass
class JobResult:
    """One experiment's execution record within an engine run."""

    name: str
    params: Dict[str, Any]
    outcome: ExperimentOutcome
    wall_time_s: float = 0.0
    cached: bool = False
    attempts: int = 0
    error: Optional[str] = None
    telemetry: Optional[Dict[str, Any]] = None


@dataclass
class EngineRun:
    """Everything one :meth:`ExperimentEngine.run` call produced."""

    results: List[JobResult]
    config: EngineConfig
    cache_stats: CacheStats
    total_wall_time_s: float = 0.0

    def outcomes(self) -> List[ExperimentOutcome]:
        """The flattened outcomes, in request order."""
        return [result.outcome for result in self.results]


def _execute_job(
    name: str, params: Dict[str, Any], telemetry: bool = False
) -> Dict[str, Any]:
    """Run one experiment to a JSON-ready payload (worker entry point).

    Must stay a module-level function so it pickles into pool workers;
    exceptions are converted to an error payload so a failing experiment
    cannot poison the pool.  With ``telemetry`` the experiment runs
    under a stats-only bus capture (events are counted per category, not
    retained) and the payload gains a ``telemetry`` summary.
    """
    start = time.perf_counter()
    try:
        from ..faults import fault_point

        fault_point("exec.dispatch")
        load_registry()
        spec = get_spec(name)
        stats: Optional[Dict[str, Any]] = None
        if telemetry:
            from ..telemetry import capture

            with capture(record_events=False) as recorder:
                result = spec.run(**params)
            stats = recorder.stats()
        else:
            result = spec.run(**params)
        outcome = outcome_from_result(result)
        payload = {
            "ok": True,
            "outcome": outcome.to_dict(),
            "wall_time_s": time.perf_counter() - start,
        }
        if stats is not None:
            payload["telemetry"] = stats
        return payload
    except BaseException:  # noqa: BLE001 - the payload is the error channel
        return {
            "ok": False,
            "error": traceback.format_exc(),
            "wall_time_s": time.perf_counter() - start,
        }


@dataclass
class _Pending:
    """Book-keeping for a job that still needs executing."""

    index: int
    name: str
    params: Dict[str, Any]
    attempts: int = 0
    last_error: Optional[str] = None


class ExperimentEngine:
    """Runs registered experiments with caching, fan-out, and retries."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.cache = ResultCache(self.config.cache_dir, verbose=self.config.verbose)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[ExperimentRequest]) -> EngineRun:
        """Execute every request; results come back in request order."""
        started = time.perf_counter()
        load_registry()
        jobs = [self._normalise(request) for request in requests]
        results: List[Optional[JobResult]] = [None] * len(jobs)

        pending: List[_Pending] = []
        for index, (name, params) in enumerate(jobs):
            replay = self._try_replay(name, params)
            if replay is not None:
                results[index] = replay
            else:
                pending.append(_Pending(index, name, params))

        for attempt in range(self.config.retries + 1):
            if not pending:
                break
            payloads = self._run_wave(pending)
            still_pending: List[_Pending] = []
            for job, payload in zip(pending, payloads):
                job.attempts += 1
                if payload.get("ok"):
                    results[job.index] = self._record_success(job, payload)
                else:
                    job.last_error = payload.get("error", "unknown worker failure")
                    still_pending.append(job)
            pending = still_pending

        for job in pending:  # retries exhausted — surface as DEVIATION
            results[job.index] = self._record_failure(job)

        final = [result for result in results if result is not None]
        return EngineRun(
            results=final,
            config=self.config,
            cache_stats=self.cache.stats,
            total_wall_time_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise(request: ExperimentRequest) -> Tuple[str, Dict[str, Any]]:
        if isinstance(request, str):
            name, overrides = request, {}
        else:
            name, overrides = request
        spec = get_spec(name)
        return spec.name, spec.resolve_params(**overrides)

    def _cache_enabled(self) -> bool:
        return self.config.use_cache

    def _try_replay(self, name: str, params: Dict[str, Any]) -> Optional[JobResult]:
        """A cache hit replayed as a finished job, else None."""
        if not self._cache_enabled() or self.config.refresh:
            return None
        payload = self.cache.load(name, params)
        if payload is None:
            return None
        outcome = ExperimentOutcome.from_dict(payload["outcome"])
        outcome.cached = True
        return JobResult(
            name=name,
            params=params,
            outcome=outcome,
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            cached=True,
            telemetry=payload.get("telemetry"),
        )

    def _record_success(self, job: _Pending, payload: Dict[str, Any]) -> JobResult:
        outcome = ExperimentOutcome.from_dict(payload["outcome"])
        outcome.wall_time_s = float(payload["wall_time_s"])
        if self._cache_enabled():
            self.cache.store(
                job.name,
                job.params,
                payload["outcome"],
                outcome.wall_time_s,
                telemetry=payload.get("telemetry"),
            )
        return JobResult(
            name=job.name,
            params=job.params,
            outcome=outcome,
            wall_time_s=outcome.wall_time_s,
            attempts=job.attempts,
            telemetry=payload.get("telemetry"),
        )

    def _record_failure(self, job: _Pending) -> JobResult:
        error = job.last_error or "unknown worker failure"
        text = (
            f"experiment {job.name!r} failed after {job.attempts} attempt(s):\n"
            f"{error}"
        )
        outcome = ExperimentOutcome(
            name=job.name,
            claim_holds=False,
            text=text,
            params=dict(job.params),
            error=error,
        )
        return JobResult(
            name=job.name,
            params=job.params,
            outcome=outcome,
            attempts=job.attempts,
            error=error,
        )

    def _run_wave(self, wave: List[_Pending]) -> List[Dict[str, Any]]:
        """Run one attempt for every pending job; never raises."""
        if self.config.parallel > 1 and len(wave) > 1:
            return self._run_wave_pool(wave)
        return [self._run_serial(job) for job in wave]

    def _run_serial(self, job: _Pending) -> Dict[str, Any]:
        """One in-process attempt, with the result-return site injected."""
        payload = _execute_job(job.name, job.params, self.config.telemetry)
        try:
            from ..faults import fault_point

            fault_point("exec.result")
        except BaseException as exc:  # noqa: BLE001 - injected channel loss
            return {"ok": False, "error": f"result channel failed: {exc!r}"}
        return payload

    def _run_wave_pool(self, wave: List[_Pending]) -> List[Dict[str, Any]]:
        """Fan a wave out over a fresh process pool; degrade gracefully.

        A worker that dies (OOM-kill, segfault) breaks the whole pool and
        every still-running future raises ``BrokenProcessPool``; those
        jobs are reported as failures for this wave and get retried in
        the next one.  If the pool cannot even start (restricted
        platforms), the wave falls back to serial execution.
        """
        import concurrent.futures as futures

        from ..faults import fault_point

        workers = min(self.config.parallel, len(wave))
        try:
            fault_point("exec.spawn")
            pool = futures.ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, NotImplementedError):
            return [self._run_serial(job) for job in wave]
        payloads: List[Dict[str, Any]] = []
        with pool:
            submitted = [
                pool.submit(
                    _execute_job, job.name, job.params, self.config.telemetry
                )
                for job in wave
            ]
            for future in submitted:
                try:
                    payload = future.result()
                    fault_point("exec.result")
                    payloads.append(payload)
                except BaseException as exc:  # noqa: BLE001 - pool breakage
                    payloads.append(
                        {"ok": False, "error": f"worker crashed: {exc!r}"}
                    )
        return payloads

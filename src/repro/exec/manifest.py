"""Machine-readable run manifests (``manifest.json``).

The manifest is the engine's structured counterpart to
``save_outcomes``' text artifacts: one JSON document per run recording
what ran, with which parameters, how long each experiment took, whether
it replayed from cache, and the run-level cache statistics.  CI uses it
to verify that a warm run actually hit the cache; see
``docs/PARALLEL.md`` for the full format.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict

from .cache import PathLike, source_tree_hash
from .engine import EngineRun

MANIFEST_SCHEMA = 1
MANIFEST_FILENAME = "manifest.json"


def build_manifest(run: EngineRun) -> Dict[str, Any]:
    """The JSON-ready manifest for one engine run."""
    deviations = [r.name for r in run.results if not r.outcome.claim_holds]
    return {
        "schema": MANIFEST_SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "tree_hash": source_tree_hash(),
        "engine": run.config.as_dict(),
        "cache": run.cache_stats.as_dict(),
        "total_wall_time_s": run.total_wall_time_s,
        "experiments": [
            {
                "name": result.name,
                "params": dict(result.params),
                "claim_holds": result.outcome.claim_holds,
                "status": result.outcome.status,
                "cached": result.cached,
                "wall_time_s": result.wall_time_s,
                "attempts": result.attempts,
                "error": result.error,
                "metrics": dict(result.outcome.metrics),
                "telemetry": result.telemetry,
            }
            for result in run.results
        ],
        "summary": {
            "total": len(run.results),
            "reproduced": len(run.results) - len(deviations),
            "deviations": deviations,
        },
    }


def write_manifest(run: EngineRun, directory: PathLike) -> Path:
    """Write ``manifest.json`` into ``directory`` (created if missing)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / MANIFEST_FILENAME
    path.write_text(json.dumps(build_manifest(run), indent=2), encoding="utf-8")
    return path

"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by the experiment's canonical name, its resolved
parameters, and a hash of the whole ``repro`` source tree — so editing
any module invalidates every entry automatically, and the same
name+params pair always replays the same result.  Entries are plain JSON
files (one per key) so they are greppable and survive interpreter
upgrades; corrupt or truncated entries degrade to a miss.

Default location: ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``,
else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

PathLike = Union[str, Path]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
CACHE_SCHEMA = 1

_TREE_HASH: Optional[str] = None


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def source_tree_hash(refresh: bool = False) -> str:
    """SHA-256 over every ``.py`` file in the installed ``repro`` package.

    Memoised per process; ``refresh=True`` forces a re-scan (only needed
    if sources change under a long-lived interpreter).
    """
    global _TREE_HASH
    if _TREE_HASH is not None and not refresh:
        return _TREE_HASH
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _TREE_HASH = digest.hexdigest()
    return _TREE_HASH


def _canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding of a parameter mapping."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counters (for the run manifest)."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class ResultCache:
    """Content-addressed experiment-result store under one directory."""

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.stats = CacheStats()

    def key_for(self, name: str, params: Mapping[str, Any]) -> str:
        """The content address of one (experiment, params) pair."""
        material = "\0".join(
            (str(CACHE_SCHEMA), name, _canonical_params(params), source_tree_hash())
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, name: str, params: Mapping[str, Any]) -> Path:
        """Where the entry lives on disk (name prefix keeps it greppable)."""
        return self.directory / f"{name}-{self.key_for(name, params)[:24]}.json"

    def load(self, name: str, params: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """Return the stored payload, or None (counting a hit or miss)."""
        path = self.path_for(name, params)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def store(
        self,
        name: str,
        params: Mapping[str, Any],
        outcome: Mapping[str, Any],
        wall_time_s: float = 0.0,
        telemetry: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist one result; the write is atomic (tmp file + rename)."""
        path = self.path_for(name, params)
        payload = {
            "schema": CACHE_SCHEMA,
            "name": name,
            "params": dict(params),
            "tree_hash": source_tree_hash(),
            "created_at": time.time(),
            "wall_time_s": wall_time_s,
            "outcome": dict(outcome),
        }
        if telemetry is not None:
            payload["telemetry"] = dict(telemetry)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        tmp.replace(path)
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by the experiment's canonical name, its resolved
parameters, and a hash of the whole ``repro`` source tree — so editing
any module invalidates every entry automatically, and the same
name+params pair always replays the same result.

Since the unified artifact store landed, the cache is a thin client of
:class:`repro.store.ArtifactStore` rooted at the cache directory: each
entry is a ``refs/exec/<name>-<key24>`` pointer at a digest-keyed JSON
blob.  The digest check that every read performs turns silent
corruption into an observable event — a truncated or garbled entry
still degrades to a miss (the result is recomputed), but a
:class:`~repro.telemetry.CacheCorruptionEvent` names the bad path, and
``verbose`` mode prints a warning.

Default location: ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``,
else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

PathLike = Union[str, Path]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
CACHE_SCHEMA = 1

#: Ref namespace cache entries live under in the artifact store.
CACHE_REF_NAMESPACE = "exec"

_TREE_HASH: Optional[str] = None


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def source_tree_hash(refresh: bool = False) -> str:
    """SHA-256 over every ``.py`` file in the installed ``repro`` package.

    Memoised per process; ``refresh=True`` forces a re-scan (only needed
    if sources change under a long-lived interpreter).
    """
    global _TREE_HASH
    if _TREE_HASH is not None and not refresh:
        return _TREE_HASH
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _TREE_HASH = digest.hexdigest()
    return _TREE_HASH


def _canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding of a parameter mapping."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance.

    ``corruptions`` counts misses caused by an entry that *existed* but
    failed its digest or parse check — always a subset of ``misses``.
    ``io_errors`` counts reads that kept failing with :class:`OSError`
    through the whole retry budget; ``write_errors`` counts stores the
    backing disk refused — both degrade (miss / not cached) rather than
    raise, because the cache is an optimisation, never ground truth.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corruptions: int = 0
    io_errors: int = 0
    write_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counters (for the run manifest)."""
        counters = {"hits": self.hits, "misses": self.misses, "stores": self.stores}
        if self.corruptions:
            counters["corruptions"] = self.corruptions
        if self.io_errors:
            counters["io_errors"] = self.io_errors
        if self.write_errors:
            counters["write_errors"] = self.write_errors
        return counters


class ResultCache:
    """Experiment-result cache backed by the unified artifact store."""

    def __init__(
        self, directory: Optional[PathLike] = None, verbose: bool = False
    ) -> None:
        from ..store import ArtifactStore

        self.directory = Path(directory) if directory else default_cache_dir()
        self.store_backend = ArtifactStore(self.directory)
        self.stats = CacheStats()
        self.verbose = verbose
        self._bus = None  # lazily created so capture() can hook it
        # Ref names whose entries were seen corrupt: their replacement
        # writes go down durably (fsync) so the repair cannot itself tear.
        self._repair: set = set()

    def key_for(self, name: str, params: Mapping[str, Any]) -> str:
        """The content address of one (experiment, params) pair."""
        material = "\0".join(
            (str(CACHE_SCHEMA), name, _canonical_params(params), source_tree_hash())
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _ref_name(self, name: str, params: Mapping[str, Any]) -> str:
        return f"{name}-{self.key_for(name, params)[:24]}"

    def path_for(self, name: str, params: Mapping[str, Any]) -> Path:
        """Where the entry's ref lives (name prefix keeps it greppable)."""
        return self.store_backend.ref_path(
            CACHE_REF_NAMESPACE, self._ref_name(name, params)
        )

    def load(self, name: str, params: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """Return the stored payload, or None (counting a hit or miss).

        An entry that is *present but unreadable* — garbled blob, digest
        mismatch, undecodable JSON — still returns None, but publishes a
        :class:`~repro.telemetry.CacheCorruptionEvent` naming the bad
        path (plus a stderr warning in verbose mode) instead of hiding
        inside the ordinary miss count.
        """
        from ..faults import RetriesExhaustedError, run_with_retry
        from ..store import ArtifactCorruptError, CodecError, StoreError, get_codec

        ref_name = self._ref_name(name, params)
        digest = self.store_backend.get_ref(CACHE_REF_NAMESPACE, ref_name)
        if digest is None:
            self.stats.misses += 1
            return None
        blob_path = self.store_backend.object_path(digest)
        try:
            raw = run_with_retry(
                lambda: self.store_backend.get_bytes(digest),
                site="cache.read",
                retry_on=(OSError,),
            )
            payload = get_codec("json").decode(raw)
        except RetriesExhaustedError:
            # The disk kept failing through the whole retry budget; the
            # cache is an optimisation, so degrade to a recompute.
            self.stats.io_errors += 1
            self.stats.misses += 1
            return None
        except (ArtifactCorruptError, CodecError, StoreError) as exc:
            self._note_corruption(blob_path, str(exc))
            # put_bytes is idempotent by digest and would keep the torn
            # blob; evict it and mark the entry for a durable re-write.
            self.store_backend.evict(digest)
            self._repair.add(ref_name)
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def store(
        self,
        name: str,
        params: Mapping[str, Any],
        outcome: Mapping[str, Any],
        wall_time_s: float = 0.0,
        telemetry: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist one result; returns the path of its digest-keyed blob."""
        payload = {
            "schema": CACHE_SCHEMA,
            "name": name,
            "params": dict(params),
            "tree_hash": source_tree_hash(),
            "created_at": time.time(),
            "wall_time_s": wall_time_s,
            "outcome": dict(outcome),
        }
        if telemetry is not None:
            payload["telemetry"] = dict(telemetry)
        ref_name = self._ref_name(name, params)
        # A replacement for a corrupt entry is written durably so the
        # repair itself cannot be torn by the next crash.
        durable = ref_name in self._repair
        try:
            info = self.store_backend.put(
                payload, "json", meta={"experiment": name}, durable=durable
            )
            self.store_backend.set_ref(
                CACHE_REF_NAMESPACE, ref_name, info.digest, durable=durable
            )
        except OSError as exc:
            # Failing to cache must not fail the experiment.
            self.stats.write_errors += 1
            if self.verbose:
                print(
                    f"warning: could not store cache entry {ref_name}: {exc}",
                    file=sys.stderr,
                )
            return self.path_for(name, params)
        if durable:
            self._repair.discard(ref_name)
        self.stats.stores += 1
        return self.store_backend.object_path(info.digest)

    def clear(self) -> int:
        """Delete every entry; returns how many entries were removed.

        Removes the ``exec`` refs then garbage-collects, so artifacts
        other tools pinned in the same store survive.
        """
        removed = 0
        for namespace, ref_name in list(self.store_backend.refs(CACHE_REF_NAMESPACE)):
            if self.store_backend.delete_ref(namespace, ref_name):
                removed += 1
        self.store_backend.gc()
        return removed

    def _note_corruption(self, path: Path, reason: str) -> None:
        from ..telemetry import CacheCorruptionEvent, TelemetryBus

        self.stats.corruptions += 1
        if self._bus is None:
            self._bus = TelemetryBus()
        self._bus.publish(CacheCorruptionEvent(time=0.0, path=str(path), reason=reason))
        if self.verbose:
            print(
                f"warning: corrupt cache entry at {path}: {reason}",
                file=sys.stderr,
            )

"""Parallel experiment execution: engine, result cache, run manifests.

The evaluation pipeline on top of the experiment registry
(:mod:`repro.experiments.registry`): fan registered experiments out over
worker processes, replay previous results from a content-addressed
on-disk cache, and record every run in a machine-readable manifest.
"""

from .cache import (
    CACHE_ENV_VAR,
    CacheStats,
    ResultCache,
    default_cache_dir,
    source_tree_hash,
)
from .engine import EngineConfig, EngineRun, ExperimentEngine, JobResult
from .manifest import MANIFEST_FILENAME, build_manifest, write_manifest

__all__ = [
    "CACHE_ENV_VAR",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "source_tree_hash",
    "EngineConfig",
    "EngineRun",
    "ExperimentEngine",
    "JobResult",
    "MANIFEST_FILENAME",
    "build_manifest",
    "write_manifest",
]

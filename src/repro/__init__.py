"""E-Android reproduction — collateral energy profiling for Android.

A full-system reproduction of *E-Android: A New Energy Profiling Tool
for Smartphones* (Gao, Liu, Liu, Wang, Stavrou — ICDCS 2017) on a
simulated device:

* :mod:`repro.sim` — deterministic discrete-event kernel (virtual time).
* :mod:`repro.power` — hardware power models, ground-truth energy meter,
  battery.
* :mod:`repro.android` — the Android 5-era framework: activities,
  services, intents, task stacks, Binder link-to-death, wakelocks,
  screen/brightness policy, settings, SurfaceFlinger side channel.
* :mod:`repro.accounting` — the baseline profilers (BatteryStats,
  PowerTutor).
* :mod:`repro.core` — **E-Android itself**: the framework monitor, the
  attack-lifecycle trackers (Fig. 5), collateral energy maps with chain
  propagation (Algorithm 1), and the revised battery interface.
* :mod:`repro.apps` — demo apps, the synthetic Play corpus, APKTool.
* :mod:`repro.attacks` — the paper's six collateral energy attacks plus
  multi/hybrid variants.
* :mod:`repro.workloads` / :mod:`repro.experiments` — the evaluation.

Quickstart::

    from repro import AndroidSystem, attach_eandroid
    from repro.apps import build_message_app, build_camera_app

    device = AndroidSystem()
    device.install_all([build_message_app(), build_camera_app()])
    device.boot()
    eandroid = attach_eandroid(device)

    message = device.launch_app("com.app.message")
    message.instance.record_video(duration_s=30)
    device.run_for(31)

    print(eandroid.report().render_text())
"""

from .accounting import BatteryStats, PowerTutor, ProfilerReport
from .android import AndroidSystem, App, Intent, explicit, implicit
from .core import (
    AttackKind,
    EAndroid,
    attach_eandroid,
    attach_eandroid_powertutor,
)
from .power import NEXUS4, Battery, DevicePowerProfile, EnergyMeter
from .sim import Kernel, SeededRng

__version__ = "1.0.0"

__all__ = [
    "AndroidSystem",
    "App",
    "Intent",
    "explicit",
    "implicit",
    "attach_eandroid",
    "attach_eandroid_powertutor",
    "EAndroid",
    "AttackKind",
    "BatteryStats",
    "PowerTutor",
    "ProfilerReport",
    "Kernel",
    "SeededRng",
    "EnergyMeter",
    "Battery",
    "DevicePowerProfile",
    "NEXUS4",
    "__version__",
]

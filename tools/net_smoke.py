#!/usr/bin/env python
"""Drive the TCP serving front-end with concurrent clients and diff it
against the in-process batch path.

Starts ``python -m repro serve --batch ... --listen 127.0.0.1:0`` as a
subprocess, scrapes the bound port from its stderr, splits a JSONL
query file round-robin across N concurrent asyncio clients (each
writes its share, half-closes, and reads to EOF), then asserts:

* every query ends ``status: ok`` — zero errors, and every ``shed``
  response is resubmitted (bounded rounds with backoff — the
  protocol's documented caller's move) until it answers;
* the multiset of ``(session, canonical report payload)`` pairs is
  byte-identical to a reference ``responses.jsonl`` produced by the
  in-process ``--queries`` path over the same corpus (ids differ by
  design: the server expands ``"*"`` preserving the original line id,
  the batch client assigns fresh ids — payloads must not);
* SIGINT shuts the server down gracefully (exit code 0, final
  ``net stats`` line on stderr).

    python tools/net_smoke.py --batch corpus/ \
        --queries examples/queries.jsonl \
        --reference serve-out/responses.jsonl --clients 8
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path
from typing import List, Tuple


def canonical_payload(report: dict) -> str:
    """Order-independent identity for one report payload."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def load_reference(path: Path) -> Counter:
    """Multiset of (session, canonical payload) from a responses.jsonl."""
    pairs: Counter = Counter()
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("status") != "ok":
            raise SystemExit(f"reference response not ok: {doc}")
        pairs[(doc["session"], canonical_payload(doc["report"]))] += 1
    if not pairs:
        raise SystemExit(f"reference {path} holds no responses")
    return pairs


def start_server(batch: str, timeout_s: float = 120.0):
    """Launch the listening server; return (process, host, port)."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--batch",
            batch,
            "--listen",
            "127.0.0.1:0",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + timeout_s
    assert proc.stderr is not None
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("server never reported its listening address")
        line = proc.stderr.readline()
        if not line:
            proc.wait()
            raise SystemExit(f"server exited early with code {proc.returncode}")
        print(f"[server] {line.rstrip()}", file=sys.stderr)
        if line.startswith("listening on "):
            host, _, port_text = line.split()[-1].rpartition(":")
            return proc, host, int(port_text)


async def run_client(
    host: str, port: int, lines: List[str], timeout_s: float
) -> List[dict]:
    """Write one client's share, half-close, read responses to EOF."""
    reader, writer = await asyncio.open_connection(host, port)

    async def read_all() -> List[dict]:
        responses = []
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
            if not raw:
                return responses
            responses.append(json.loads(raw))

    # Read concurrently with writing: a client that writes its whole
    # share first can deadlock against server write backpressure once
    # both socket buffers fill.
    collector = asyncio.ensure_future(read_all())
    try:
        for line in lines:
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()
        writer.write_eof()
        return await collector
    finally:
        if not collector.done():
            collector.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def drive(
    host: str, port: int, query_lines: List[str], clients: int, timeout_s: float
) -> Tuple[List[dict], int]:
    shares: List[List[str]] = [[] for _ in range(clients)]
    for index, line in enumerate(query_lines):
        shares[index % clients].append(line)
    results = await asyncio.gather(
        *(run_client(host, port, share, timeout_s) for share in shares)
    )
    responses = [doc for batch in results for doc in batch]
    return responses, len([s for s in shares if s])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", default="corpus/", help="ingest path")
    parser.add_argument("--queries", default="examples/queries.jsonl")
    parser.add_argument(
        "--reference",
        required=True,
        help="responses.jsonl from the in-process --queries path",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-read timeout (s)"
    )
    args = parser.parse_args(argv)

    # Explicit unique ids so shed responses map back to their query
    # regardless of which client carried the line.
    requests = {}
    for index, line in enumerate(
        Path(args.queries).read_text(encoding="utf-8").splitlines()
    ):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        doc = json.loads(line)
        doc["id"] = len(requests) + 1
        requests[doc["id"]] = doc
    query_lines = [json.dumps(doc) for doc in requests.values()]
    next_id = len(requests) + 1
    reference = load_reference(Path(args.reference))

    ok: List[dict] = []
    proc, host, port = start_server(args.batch)
    try:
        responses, active = asyncio.run(
            drive(host, port, query_lines, args.clients, args.timeout)
        )
        for round_index in range(1, 11):
            shed = [doc for doc in responses if doc.get("status") == "shed"]
            bad = [
                doc
                for doc in responses
                if doc.get("status") not in ("ok", "shed")
            ]
            if bad:
                raise SystemExit(
                    f"{len(bad)} error response(s) over TCP, first: {bad[0]}"
                )
            ok.extend(doc for doc in responses if doc.get("status") == "ok")
            if not shed:
                break
            # Back off, then resubmit each shed query session-specific
            # (the wildcard already expanded server-side).
            time.sleep(0.2 * round_index)
            resubmits = []
            for doc in shed:
                original = requests[doc["id"]]
                retry = dict(original, id=next_id, session=doc["session"])
                requests[next_id] = retry
                next_id += 1
                resubmits.append(json.dumps(retry))
            print(
                f"[smoke] round {round_index}: resubmitting "
                f"{len(resubmits)} shed quer(ies)",
                file=sys.stderr,
            )
            responses, _ = asyncio.run(
                drive(host, port, resubmits, args.clients, args.timeout)
            )
        else:
            raise SystemExit("queries still shed after 10 resubmit rounds")
    finally:
        proc.send_signal(signal.SIGINT)
        stderr_tail = proc.stderr.read() if proc.stderr else ""
        code = proc.wait(timeout=60)
        for line in stderr_tail.splitlines():
            print(f"[server] {line}", file=sys.stderr)

    if code != 0:
        raise SystemExit(f"server exited {code} after SIGINT (expected 0)")
    if "net stats:" not in stderr_tail:
        raise SystemExit("server never printed its final net stats line")

    served: Counter = Counter(
        (doc["session"], canonical_payload(doc["report"])) for doc in ok
    )
    if served != reference:
        missing = reference - served
        extra = served - reference
        raise SystemExit(
            "TCP payloads diverge from the in-process path: "
            f"{sum(missing.values())} missing, {sum(extra.values())} extra; "
            f"first missing: {next(iter(missing), None)}"
        )
    print(
        f"net smoke ok: {len(ok)} response(s) over {active} "
        f"concurrent client(s), payload multiset byte-identical to "
        f"{args.reference}, graceful shutdown exit 0"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Deterministically partition the test suite into CI shards.

Prints the test files belonging to one shard, space-separated, for
``pytest`` to consume:

    files=$(python tools/ci_shard.py --shards 2 --index 1)
    python -m pytest $files

Files are balanced greedily by size (a cheap, deterministic proxy for
runtime) so the shards finish in comparable wall time; ties break on
the filename, so every runner computes the same partition with no
plugin and no shared state.  Every test file lands in exactly one
shard — the union over indices is always the whole suite.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List


def shard_files(test_dir: Path, shards: int, index: int) -> List[Path]:
    """The sorted test files assigned to 1-based shard ``index``."""
    files = sorted(test_dir.glob("test_*.py"))
    if not files:
        raise SystemExit(f"no test files under {test_dir}")
    # Largest first, then greedily onto the currently lightest shard.
    by_weight = sorted(files, key=lambda p: (-p.stat().st_size, p.name))
    loads = [0] * shards
    assigned: List[List[Path]] = [[] for _ in range(shards)]
    for path in by_weight:
        lightest = min(range(shards), key=lambda i: (loads[i], i))
        assigned[lightest].append(path)
        loads[lightest] += path.stat().st_size
    return sorted(assigned[index - 1])


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2, help="total shard count")
    parser.add_argument("--index", type=int, required=True, help="1-based shard index")
    parser.add_argument(
        "--test-dir", default="tests", help="directory holding test_*.py files"
    )
    args = parser.parse_args(argv)
    if args.shards < 1 or not 1 <= args.index <= args.shards:
        parser.error(f"--index must be in 1..{args.shards}")
    files = shard_files(Path(args.test_dir), args.shards, args.index)
    print(" ".join(str(f) for f in files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
